"""The in-process query server: one event loop, three-way outcomes.

:class:`QueryServer` consumes an arrival-ordered request stream (see
:mod:`repro.serve.traffic`) and runs a discrete-event simulation on a
:class:`VirtualClock`: arrivals are admitted or shed
(:mod:`repro.serve.admission`), admitted requests wait in an
:class:`~repro.serve.scheduler.AgingPriorityQueue`, and up to
``max_concurrent`` requests are in service at once.  Service times are
*virtual* — the LLM cost model (:func:`~repro.llm.batching.
parallel_makespan` over the request's actual paid call sizes) decides
when each answer lands, so a full overload study costs seconds of real
compute and is bit-for-bit reproducible.

Deadlines are enforced end-to-end, by construction:

- a request that expires while queued is *rejected* at its deadline
  instant (``deadline_expired``) — it never runs;
- a dispatched request executes with its remaining budget as an
  executor-level :class:`~repro.llm.resilience.Deadline`, so retry
  backoff (under fault injection) degrades cells rather than overruns;
- a finished answer whose virtual service time would still land past
  the deadline is *clamped to the deadline* and delivered NULL-degraded
  — the client always hears back by ``arrival + deadline_seconds``.

Sustained overload feeds the existing :class:`~repro.llm.resilience.
CircuitBreaker`: every deadline miss is a breaker failure, and once it
trips, subsequent requests skip LLM work entirely and get a cheap
degraded answer until the cooldown half-opens the breaker — quality
sheds before availability, and the queue drains instead of collapsing.

All requests of all tenants share one prompt cache per database, one
:class:`~repro.plan.MappingStore`, one telemetry registry, and one run
ledger — cross-request reuse is the whole economic argument for serving
hybrid queries from a resident process.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.core.hqdl import HQDL
from repro.errors import CircuitOpenError, ReproError
from repro.llm.batching import batched, parallel_makespan
from repro.llm.cache import CachingClient, PromptCache
from repro.llm.chat import MockChatModel
from repro.llm.diskcache import PersistentClient, PersistentPromptCache
from repro.llm.faults import FaultInjector, FaultPlan, FaultyClient
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.llm.resilience import (
    CircuitBreaker,
    Deadline,
    ResilienceReport,
    RetryingClient,
    RetryPolicy,
)
from repro.llm.usage import Usage, UsageMeter
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.ledger import RunLedger
from repro.obs.slo import AVAILABILITY, SLOTracker
from repro.plan import MappingStore
from repro.plan.policy import AdaptiveBatchPolicy
from repro.serve.admission import AdmissionController, TenantPolicy
from repro.serve.batcher import (
    BatchingConfig,
    CrossRequestBatcher,
    FlushedGroup,
    PendingRequest,
)
from repro.serve.request import (
    DEGRADED,
    REJECTED,
    SERVED,
    QueryRequest,
    RequestOutcome,
)
from repro.serve.scheduler import AgingPriorityQueue
from repro.serve.trace import ServeTraceLog, TraceRecord, WaveRecord
from repro.swan.benchmark import Swan
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor, _parse_map_answers


class VirtualClock:
    """The server's time source: advanced by the event loop, never real."""

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self._now += max(0.0, seconds)

    def advance_to(self, when: float) -> None:
        if when > self._now:
            self._now = when


class ServiceTimer:
    """Request-local virtual time: global now + this request's backoffs.

    Handed to the request's :class:`~repro.llm.resilience.Deadline` (and,
    under fault injection, the retry layer's clock), so waiting consumes
    *that request's* budget without advancing the server clock — other
    in-flight requests are unaffected, exactly as if each ran on its own
    thread of wall time.
    """

    def __init__(self, start: float) -> None:
        self.start = start
        self.elapsed = 0.0
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self.start + self.elapsed

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self.elapsed += max(0.0, seconds)


class _SizeRecorder:
    """A pass-through client recording (input, output) sizes of paid calls.

    The UDF executor reports its own call sizes; HQDL does not, so the
    server slips this between the pipeline and the model to know what a
    generation *cost* — cache-served responses (zero ``Usage.calls``)
    are free and unrecorded, matching the makespan model.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.model_name = inner.model_name
        self.prefers_batch_dispatch = bool(
            getattr(inner, "prefers_batch_dispatch", False)
        )
        self.sizes: list[tuple[int, int]] = []

    def _record(self, response) -> None:
        if response.usage.calls:
            self.sizes.append(
                (response.usage.input_tokens, response.usage.output_tokens)
            )

    def complete(self, prompt: str, *, label: str = ""):
        response = self.inner.complete(prompt, label=label)
        self._record(response)
        return response

    def complete_many(self, prompts, labels, *, deadline=None):
        if deadline is not None:
            responses = self.inner.complete_many(prompts, labels, deadline=deadline)
        else:
            responses = self.inner.complete_many(prompts, labels)
        for response in responses:
            self._record(response)
        return responses


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of one :class:`QueryServer`.

    ``workers`` is the per-request LLM fan-out (feeds the makespan
    model); ``max_concurrent`` is how many requests execute at once;
    ``queue_limit`` bounds the admission queue (backpressure);
    ``base_overhead`` models the non-LLM per-request cost (parse, SQL,
    delivery).  ``fault_rate > 0`` injects upstream faults through the
    existing FaultyClient/RetryingClient stack, with retry backoff
    charged against each request's deadline.
    """

    model_name: str = "gpt-4-turbo"
    shots: int = 2
    batch_size: int = 5
    pushdown: bool = True
    workers: int = 4
    max_concurrent: int = 4
    queue_limit: int = 64
    aging_interval: float = 10.0
    base_overhead: float = 0.05
    breaker_failure_threshold: int = 3
    breaker_cooldown: float = 30.0
    share_mappings: bool = False
    fault_rate: float = 0.0
    fault_seed: int = 0
    cache_dir: Optional[Union[str, Path]] = None
    optimize: bool = True
    #: cross-request continuous batching (None = per-request dispatch,
    #: byte-identical to the pre-batching server)
    batching: Optional[BatchingConfig] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.base_overhead < 0:
            raise ValueError(
                f"base_overhead must be >= 0, got {self.base_overhead}"
            )
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(
                f"fault_rate must be in [0, 1], got {self.fault_rate}"
            )


@dataclass
class ServeReport:
    """Everything one serving run produced, with the invariants to check."""

    outcomes: list[RequestOutcome]
    horizon: float
    admitted: int
    shed: int
    shed_by_reason: dict[str, int]
    usage: Usage
    breaker_trips: int
    max_queue_depth: int
    cache_hits: int
    cache_misses: int
    mapping_stats: dict
    resilience: ResilienceReport
    #: cross-request batching summary (None when batching is off, which
    #: keeps the unbatched record byte-identical to the pre-batching one)
    batching: Optional[dict] = None

    @property
    def offered(self) -> int:
        return len(self.outcomes)

    @property
    def served(self) -> int:
        return sum(1 for o in self.outcomes if o.status == SERVED)

    @property
    def degraded(self) -> int:
        return sum(1 for o in self.outcomes if o.status == DEGRADED)

    @property
    def rejected(self) -> int:
        return sum(1 for o in self.outcomes if o.status == REJECTED)

    @property
    def answered(self) -> int:
        return self.served + self.degraded

    def accounted(self) -> bool:
        """The serving trichotomy: every offer served, degraded, or rejected."""
        return (
            self.offered == self.served + self.degraded + self.rejected
            and self.shed + self.admitted == self.offered
        )

    def latencies(self) -> list[float]:
        """Latencies of answered requests (rejections refuse, not answer)."""
        return sorted(o.latency for o in self.outcomes if o.answered)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of answered latency; 0.0 when empty."""
        latencies = self.latencies()
        if not latencies:
            return 0.0
        rank = max(1, -(-int(q * 100) * len(latencies) // 100))
        return latencies[min(rank, len(latencies)) - 1]

    def max_latency(self) -> float:
        latencies = self.latencies()
        return latencies[-1] if latencies else 0.0

    def throughput(self) -> float:
        """Answered requests per virtual second over the run's span."""
        if not self.outcomes:
            return 0.0
        span = max(self.horizon, max(o.finish_time for o in self.outcomes))
        return self.answered / span if span > 0 else 0.0

    def per_tenant(self) -> dict[str, dict]:
        """Per-tenant offered/served/degraded/rejected/token totals."""
        tenants: dict[str, dict] = {}
        for outcome in self.outcomes:
            stats = tenants.setdefault(
                outcome.request.tenant,
                {"offered": 0, "served": 0, "degraded": 0, "rejected": 0,
                 "tokens": 0},
            )
            stats["offered"] += 1
            stats[outcome.status] += 1
            stats["tokens"] += outcome.input_tokens + outcome.output_tokens
        for stats in tenants.values():
            answered = stats["served"] + stats["degraded"]
            stats["answered_share"] = round(
                answered / stats["offered"], 6
            ) if stats["offered"] else 0.0
        return tenants

    def fairness(self) -> float:
        """Jain's index over per-tenant answered shares (1.0 = equal).

        Measured on answered/offered ratios, so a tenant offering more
        load does not *count* as being treated better — only getting a
        larger fraction of its own requests answered does.
        """
        shares = [t["answered_share"] for t in self.per_tenant().values()]
        if not shares:
            return 1.0
        total = sum(shares)
        squares = sum(s * s for s in shares)
        if squares == 0:
            return 1.0
        return (total * total) / (len(shares) * squares)

    def degraded_by_reason(self) -> dict[str, int]:
        reasons: dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.status == DEGRADED:
                key = outcome.reason or "unknown"
                reasons[key] = reasons.get(key, 0) + 1
        return reasons

    def rejected_by_reason(self) -> dict[str, int]:
        reasons: dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.status == REJECTED:
                key = outcome.reason or "unknown"
                reasons[key] = reasons.get(key, 0) + 1
        return reasons

    def tokens_per_answer(self) -> float:
        """Total tokens per answered request — the serving economy metric."""
        answered = self.answered
        if not answered:
            return 0.0
        return (self.usage.input_tokens + self.usage.output_tokens) / answered

    def as_record(self) -> dict:
        """A flat, JSON-stable summary (all floats rounded)."""
        offered = self.offered
        record = {
            "offered": offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "served": self.served,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "shed_rate": round(self.shed / offered, 6) if offered else 0.0,
            "degraded_rate": (
                round(self.degraded / offered, 6) if offered else 0.0
            ),
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "degraded_by_reason": dict(sorted(self.degraded_by_reason().items())),
            "rejected_by_reason": dict(sorted(self.rejected_by_reason().items())),
            "p50": round(self.percentile(0.50), 6),
            "p95": round(self.percentile(0.95), 6),
            "p99": round(self.percentile(0.99), 6),
            "max_latency": round(self.max_latency(), 6),
            "throughput_rps": round(self.throughput(), 6),
            "fairness": round(self.fairness(), 6),
            "per_tenant": dict(sorted(self.per_tenant().items())),
            "breaker_trips": self.breaker_trips,
            "max_queue_depth": self.max_queue_depth,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "mapping": self.mapping_stats,
            "llm_calls": self.usage.calls,
            "input_tokens": self.usage.input_tokens,
            "output_tokens": self.usage.output_tokens,
            "accounting_ok": self.accounted(),
        }
        if self.batching is not None:
            record["batching"] = self.batching
        return record


class _UdfState:
    """One database's long-lived UDF serving state."""

    def __init__(self, db, executor, cache, disk) -> None:
        self.db = db
        self.executor = executor
        self.cache = cache
        self.disk = disk


class _HqdlState:
    """One database's long-lived HQDL serving state (lazy materialization)."""

    def __init__(self, pipeline, recorder, disk, cache=None) -> None:
        self.pipeline = pipeline
        self.recorder = recorder
        self.disk = disk
        #: prompt cache in front of generation, only under cross-request
        #: batching: flushed generation prompts land here, so the first
        #: finalize materializes from cache instead of paying twice
        self.cache = cache
        self.db = None
        self.generation_sizes: list[tuple[int, int]] = []


class QueryServer:
    """Serve a request stream over one SWAN benchmark, deterministically."""

    def __init__(
        self,
        swan: Swan,
        config: Optional[ServerConfig] = None,
        *,
        policies: Optional[dict[str, TenantPolicy]] = None,
        telemetry: Optional[Telemetry] = None,
        slo_tracker: Optional[SLOTracker] = None,
        ledger: Optional[RunLedger] = None,
        trace: Optional[ServeTraceLog] = None,
    ) -> None:
        self.swan = swan
        self.config = config if config is not None else ServerConfig()
        self.clock = VirtualClock()
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self.slo_tracker = slo_tracker
        #: passive per-request trace sink (None = tracing off); nothing
        #: in the event loop ever *reads* it, preserving byte identity
        self._trace = trace
        self.admission = AdmissionController(
            self.config.queue_limit, policies, telemetry=self._tel
        )
        self.queue = AgingPriorityQueue(
            self.config.aging_interval, telemetry=self._tel
        )
        self.ledger = ledger
        self.meter = UsageMeter()
        self.resilience = ResilienceReport()
        self.mapping_store = MappingStore()
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown=self.config.breaker_cooldown,
            clock=self.clock,
            report=self.resilience,
            telemetry=self._tel,
        )
        self.batcher: Optional[CrossRequestBatcher] = None
        if self.config.batching is not None:
            self.batcher = CrossRequestBatcher(
                self.config.batching,
                AdaptiveBatchPolicy.for_model(
                    self.config.model_name, self.config.shots
                ),
            )
        self._udf: dict[str, _UdfState] = {}
        self._hqdl: dict[str, _HqdlState] = {}
        self._in_service = 0
        self._max_queue_depth = 0
        self._service_ewma: Optional[float] = None
        self._events: list[tuple] = []
        self._seq = 0
        #: trace ids of requests dispatched but not yet finished — the
        #: flight recorder snapshots these (plus the queue) into every
        #: incident, independent of whether tracing is on
        self._in_flight: set[str] = set()
        if self._tel.flight.enabled:
            self._tel.flight.context_provider = self._flight_context
        metrics = self._tel.metrics
        self._m_offered = metrics.counter("serve.offered")
        self._m_admitted = metrics.counter("serve.admitted")
        self._m_shed = metrics.counter("serve.shed")
        self._m_served = metrics.counter("serve.served")
        self._m_degraded = metrics.counter("serve.degraded")
        self._m_rejected = metrics.counter("serve.rejected")
        self._m_queue_depth = metrics.gauge("serve.queue_depth")

    # -- per-database pipeline state ----------------------------------------------

    def _base_model(self, world):
        return MockChatModel(
            KnowledgeOracle(world, optimize=self.config.optimize),
            get_profile(self.config.model_name),
            meter=self.meter,
            optimize=self.config.optimize,
        )

    def _wrap_faults(self, model):
        """The chaos-mode stack; a pass-through when fault_rate is 0."""
        if self.config.fault_rate <= 0:
            return model
        injector = FaultInjector(
            FaultPlan.uniform(self.config.fault_rate, seed=self.config.fault_seed)
        )
        return RetryingClient(
            FaultyClient(model, injector),
            RetryPolicy(seed=self.config.fault_seed),
            clock=self.clock,
            report=self.resilience,
            telemetry=self._tel,
        )

    def _wrap_disk(self, model, database: str):
        if self.config.cache_dir is None:
            return model, None
        disk = PersistentPromptCache(
            Path(self.config.cache_dir) / f"{database}.sqlite"
        )
        return (
            PersistentClient(
                model, disk, shots=self.config.shots, telemetry=self._tel
            ),
            disk,
        )

    def _udf_state(self, database: str) -> _UdfState:
        state = self._udf.get(database)
        if state is None:
            world = self.swan.world(database)
            model = self._wrap_faults(self._base_model(world))
            model, disk = self._wrap_disk(model, database)
            db = build_curated_database(world)
            cache = PromptCache()
            executor = HybridQueryExecutor(
                db,
                model,
                world,
                batch_size=self.config.batch_size,
                pushdown=self.config.pushdown,
                shots=self.config.shots,
                cache=cache,
                workers=self.config.workers,
                resilience=self.resilience,
                telemetry=self._tel,
                mapping_store=self.mapping_store,
                optimize=self.config.optimize,
            )
            executor.publish_mappings = self.config.share_mappings
            state = _UdfState(db, executor, cache, disk)
            self._udf[database] = state
        return state

    def _hqdl_state(self, database: str) -> _HqdlState:
        state = self._hqdl.get(database)
        if state is None:
            world = self.swan.world(database)
            recorder = _SizeRecorder(self._wrap_faults(self._base_model(world)))
            model, disk = self._wrap_disk(recorder, database)
            cache = None
            if self.batcher is not None:
                # flushed generation prompts must be reusable at finalize
                cache = PromptCache()
                model = CachingClient(model, cache, telemetry=self._tel)
            pipeline = HQDL(
                world,
                model,
                shots=self.config.shots,
                workers=self.config.workers,
                resilience=self.resilience,
                telemetry=self._tel,
                optimize=self.config.optimize,
            )
            state = _HqdlState(pipeline, recorder, disk, cache)
            self._hqdl[database] = state
        return state

    def close(self) -> None:
        """Release every database connection and disk cache."""
        for state in self._udf.values():
            state.db.close()
            if state.disk is not None:
                state.disk.close()
        self._udf.clear()
        for state in self._hqdl.values():
            if state.db is not None:
                state.db.close()
            if state.disk is not None:
                state.disk.close()
        self._hqdl.clear()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the event loop -----------------------------------------------------------

    def run(self, requests: Sequence[QueryRequest]) -> ServeReport:
        """Serve the whole stream; returns when the last outcome landed."""
        outcomes: list[RequestOutcome] = []
        self._events = []
        self._seq = 0
        for request in sorted(
            requests, key=lambda r: (r.arrival, r.request_id)
        ):
            self._push_event(request.arrival, "arrival", request)
        horizon = max((r.arrival for r in requests), default=0.0)
        while self._events:
            when, _, kind, payload = heapq.heappop(self._events)
            if kind == "flush" and not self.batcher.has_due(when):
                # a superseded release time (the group flushed earlier or
                # re-targeted); skipped without advancing the clock
                continue
            self.clock.advance_to(when)
            if kind == "flush":
                self._on_flush()
                continue
            if kind == "land":
                # landings never free a service slot (only a finish
                # does), so no dispatch pass: queue reaping stays at the
                # same instants as the unbatched path
                self._on_land(payload)
                continue
            if kind == "arrival":
                outcome = self._on_arrival(payload)
                if outcome is not None:
                    outcomes.append(outcome)
            else:
                self._on_finish(payload)
                outcomes.append(payload)
            outcomes.extend(self._dispatch_ready())
        if len(self.queue) or self._in_service:
            raise ReproError(
                f"event loop drained with {len(self.queue)} queued and "
                f"{self._in_service} in-service requests"
            )
        if self.slo_tracker is not None:
            # seal the run so the last open window's alerts evaluate
            self.slo_tracker.finalize(self.clock.now())
        cache_hits = sum(s.cache.hits for s in self._udf.values())
        cache_misses = sum(s.cache.misses for s in self._udf.values())
        report = ServeReport(
            outcomes=outcomes,
            horizon=horizon,
            admitted=self.admission.admitted,
            shed=self.admission.shed,
            shed_by_reason=dict(self.admission.shed_by_reason),
            usage=self.meter.total,
            breaker_trips=self.breaker.trips,
            max_queue_depth=self._max_queue_depth,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            mapping_stats=self.mapping_store.stats(),
            resilience=self.resilience,
        )
        if self.batcher is not None:
            stats = self.batcher.stats()
            stats["shared_tokens_by_tenant"] = {
                tenant: tokens
                for tenant, tokens in sorted(
                    self.admission.tokens_shared.items()
                )
                if tokens
            }
            stats["tokens_per_answer"] = round(report.tokens_per_answer(), 6)
            report.batching = stats
        if not self.admission.accounted() or not report.accounted():
            raise ReproError(
                "serving accounting does not balance: "
                f"offered={report.offered} served={report.served} "
                f"degraded={report.degraded} rejected={report.rejected}"
            )
        if self.ledger is not None:
            self.ledger.append(
                label="serve",
                pipeline="serve",
                config={
                    "model": self.config.model_name,
                    "shots": self.config.shots,
                    "workers": self.config.workers,
                    "max_concurrent": self.config.max_concurrent,
                    "queue_limit": self.config.queue_limit,
                },
                ex=None,
                f1=None,
                llm_calls=report.usage.calls,
                input_tokens=report.usage.input_tokens,
                output_tokens=report.usage.output_tokens,
                makespan=round(
                    max((o.finish_time for o in outcomes), default=0.0), 6
                ),
                payload={"serve": report.as_record()},
            )
        return report

    def _push_event(self, when: float, kind: str, payload) -> None:
        heapq.heappush(self._events, (when, self._seq, kind, payload))
        self._seq += 1

    def _flight_context(self) -> dict:
        """Live request context snapshotted into incident dumps.

        Trace ids are pure functions of request ids, so this is
        recorded whether or not tracing is on — an incident line links
        to the same traces either way.
        """
        return {
            "in_flight": sorted(self._in_flight),
            "queued": [r.trace_id for r in self.queue.pending()],
        }

    def _trace_outcome(
        self,
        outcome: RequestOutcome,
        *,
        start: Optional[float] = None,
        land: Optional[float] = None,
        overhead_seconds: float = 0.0,
        llm_seconds: float = 0.0,
        backoff_seconds: float = 0.0,
        retries: int = 0,
        waves: Sequence[str] = (),
    ) -> None:
        """Append one terminal outcome's trace record (tracing on only)."""
        if self._trace is None:
            return
        request = outcome.request
        promotions: tuple[float, ...] = ()
        if start is not None or outcome.reason == "deadline_expired":
            queue_end = start if start is not None else outcome.finish_time
            promotions = tuple(
                self.queue.promotion_instants(
                    request, request.arrival, queue_end
                )
            )
        self._trace.add(
            TraceRecord(
                request_id=request.request_id,
                trace_id=request.trace_id,
                tenant=request.tenant,
                database=request.database,
                pipeline=request.pipeline,
                priority=request.priority,
                arrival=request.arrival,
                deadline_at=request.deadline_at,
                status=outcome.status,
                reason=outcome.reason,
                finish=outcome.finish_time,
                queue_wait=outcome.queue_wait,
                start=start,
                land=land,
                overhead_seconds=overhead_seconds,
                llm_seconds=llm_seconds,
                backoff_seconds=backoff_seconds,
                retries=retries,
                llm_calls=outcome.llm_calls,
                input_tokens=outcome.input_tokens,
                output_tokens=outcome.output_tokens,
                shared_tokens=outcome.shared_tokens,
                degraded_keys=outcome.degraded_keys,
                rows=outcome.rows,
                promotions=promotions,
                waves=tuple(waves),
            )
        )

    def _record_outcome(self, outcome: RequestOutcome) -> None:
        """Windowed telemetry + SLO accounting for one terminal outcome.

        Purely passive: nothing recorded here feeds back into admission,
        scheduling, or execution, which is what lets the NULL-telemetry
        run stay byte-identical to the instrumented one.
        """
        request = outcome.request
        t = outcome.finish_time
        ts = self._tel.timeseries
        if ts.enabled:
            ts.record("serve." + outcome.status, t, tenant=request.tenant)
            if outcome.answered:
                ts.observe(
                    "serve.latency", t, outcome.latency,
                    exemplar=request.trace_id,
                )
                ts.observe(
                    "serve.latency", t, outcome.latency,
                    exemplar=request.trace_id, tenant=request.tenant,
                )
                tokens = outcome.input_tokens + outcome.output_tokens
                if tokens:
                    ts.record("serve.tokens", t, tokens, tenant=request.tenant)
                if outcome.llm_calls:
                    ts.record(
                        "serve.llm_calls", t, outcome.llm_calls,
                        tenant=request.tenant,
                    )
        if outcome.status == DEGRADED:
            self._tel.flight.record(
                t, "degrade",
                tenant=request.tenant, reason=outcome.reason or "",
                request_id=request.request_id, trace_id=request.trace_id,
            )
        tracker = self.slo_tracker
        if tracker is not None:
            for slo in tracker.slos:
                if slo.kind == AVAILABILITY:
                    tracker.record(
                        slo.name, t, outcome.answered,
                        exemplar=request.trace_id,
                    )
                elif outcome.answered:
                    tracker.record(
                        slo.name, t, outcome.latency <= slo.latency_target,
                        exemplar=request.trace_id,
                    )

    def _retry_hint(self) -> float:
        """Seconds until admission plausibly succeeds, from the backlog."""
        base = (
            self._service_ewma
            if self._service_ewma is not None
            else self.config.base_overhead
        )
        waiting = self.admission.total_queued() + self._in_service
        return round(
            base * (waiting / max(1, self.config.max_concurrent) + 1.0), 6
        )

    def _on_arrival(self, request: QueryRequest) -> Optional[RequestOutcome]:
        self._m_offered.inc()
        if self._tel.timeseries.enabled:
            self._tel.timeseries.record(
                "serve.offered", request.arrival, tenant=request.tenant
            )
        rejection = self.admission.admit(
            request, retry_after=self._retry_hint()
        )
        if rejection is not None:
            self._m_shed.inc()
            self._m_rejected.inc()
            outcome = RequestOutcome(
                request=request,
                status=REJECTED,
                reason=rejection.reason,
                finish_time=self.clock.now(),
                retry_after=rejection.retry_after,
            )
            self._record_outcome(outcome)
            self._trace_outcome(outcome)
            return outcome
        self._m_admitted.inc()
        self.queue.push(request)
        depth = len(self.queue)
        self._m_queue_depth.set(depth)
        if depth > self._max_queue_depth:
            self._max_queue_depth = depth
        return None

    def _dispatch_ready(self) -> list[RequestOutcome]:
        """Expire stale queue entries, then fill free service slots."""
        outcomes: list[RequestOutcome] = []
        now = self.clock.now()
        for request in self.queue.pop_expired(now):
            # the client gave up at its deadline instant, which is <= now;
            # this is a post-admission rejection, so admission's
            # offered == admitted + shed balance is untouched
            self.admission.on_expired_in_queue(request)
            self._m_rejected.inc()
            outcome = RequestOutcome(
                request=request,
                status=REJECTED,
                reason="deadline_expired",
                finish_time=request.deadline_at,
                queue_wait=request.deadline_seconds,
            )
            self._record_outcome(outcome)
            self._trace_outcome(outcome)
            outcomes.append(outcome)
        while self._in_service < self.config.max_concurrent:
            request = self.queue.pop(now, eligible=self.admission.can_dispatch)
            if request is None:
                break
            self.admission.on_dispatched(request)
            self._in_service += 1
            self._in_flight.add(request.trace_id)
            if self.batcher is not None:
                self._begin_batched(request)
            else:
                outcome = self._execute(request)
                self._push_event(outcome.finish_time, "finish", outcome)
        self._m_queue_depth.set(len(self.queue))
        return outcomes

    def _on_finish(self, outcome: RequestOutcome) -> None:
        self._in_service -= 1
        self._in_flight.discard(outcome.request.trace_id)
        self.admission.on_finished(
            outcome.request,
            outcome.input_tokens + outcome.output_tokens,
            shared_tokens=outcome.shared_tokens,
        )
        if outcome.status == SERVED:
            self._m_served.inc()
        else:
            self._m_degraded.inc()
        self._record_outcome(outcome)

    # -- request execution --------------------------------------------------------

    def _execute(self, request: QueryRequest) -> RequestOutcome:
        """Run one dispatched request; returns its (future) outcome.

        The result is computed *now* in real time but delivered at the
        virtual ``finish_time`` the cost model assigns.  Requests are
        therefore serialized through the shared caches in dispatch
        order — the deterministic analogue of lock-ordered cache access.
        """
        start = self.clock.now()
        queue_wait = start - request.arrival
        remaining = request.deadline_seconds - queue_wait
        try:
            self.breaker.before_call()
        except CircuitOpenError:
            # overload fast path: no LLM work, a NULL-degraded answer at
            # the cheap fixed cost — availability preserved, quality shed
            finish = min(
                start + self.config.base_overhead, request.deadline_at
            )
            outcome = RequestOutcome(
                request=request,
                status=DEGRADED,
                reason="breaker_open",
                finish_time=finish,
                queue_wait=queue_wait,
                service_seconds=finish - start,
            )
            self._trace_outcome(outcome, start=start)
            return outcome
        timer = ServiceTimer(start)
        retries_before = self.resilience.retries
        usage_before = self.meter.total
        error: Optional[ReproError] = None
        rows: Optional[int] = None
        degraded_keys = 0
        call_sizes: list[tuple[int, int]] = []
        if request.pipeline == "udf":
            state = self._udf_state(request.database)
            executor = state.executor
            executor.deadline = Deadline(max(remaining, 1e-9), timer)
            try:
                result, report = executor.execute_with_report(request.sql)
                rows = len(result.rows)
                degraded_keys = report.degraded_keys
                call_sizes = list(report.call_sizes)
            except ReproError as exc:
                error = exc
            finally:
                executor.deadline = None
        else:
            state = self._hqdl_state(request.database)
            pipeline = state.pipeline
            try:
                if state.db is None:
                    # first touch pays materialization; later requests
                    # answer from the resident expanded database
                    mark = len(state.recorder.sizes)
                    pipeline.deadline = Deadline(max(remaining, 1e-9), timer)
                    try:
                        generation = pipeline.generate_all()
                    finally:
                        pipeline.deadline = None
                    state.generation_sizes = state.recorder.sizes[mark:]
                    state.db = pipeline.build_expanded_database(generation)
                    call_sizes = list(state.generation_sizes)
                result = pipeline.answer(
                    state.db, self.swan.question(request.qid)
                )
                rows = len(result.rows)
            except ReproError as exc:
                error = exc
        usage_delta = self.meter.total - usage_before
        llm_seconds = parallel_makespan(call_sizes, self.config.workers)
        service = self.config.base_overhead + llm_seconds + timer.elapsed
        self._service_ewma = (
            service
            if self._service_ewma is None
            else 0.8 * self._service_ewma + 0.2 * service
        )
        finish = start + service
        if error is not None:
            status, reason = DEGRADED, "error"
            finish = min(finish, request.deadline_at)
            self.breaker.record_failure()
        elif finish > request.deadline_at:
            # the full answer would land late: deliver NULL-degraded at
            # exactly the deadline and tell the breaker we are drowning
            status, reason = DEGRADED, "deadline"
            degraded_keys = max(degraded_keys, rows or 0)
            finish = request.deadline_at
            self.breaker.record_failure()
        elif degraded_keys:
            status, reason = DEGRADED, (
                "deadline" if self.config.fault_rate <= 0 else "faults"
            )
            self.breaker.record_success()
        else:
            status, reason = SERVED, None
            self.breaker.record_success()
        outcome = RequestOutcome(
            request=request,
            status=status,
            reason=reason,
            finish_time=finish,
            queue_wait=queue_wait,
            service_seconds=finish - start,
            rows=rows,
            llm_calls=usage_delta.calls,
            input_tokens=usage_delta.input_tokens,
            output_tokens=usage_delta.output_tokens,
            degraded_keys=degraded_keys,
            partial=status == DEGRADED and rows is not None,
        )
        self._trace_outcome(
            outcome,
            start=start,
            overhead_seconds=self.config.base_overhead,
            llm_seconds=llm_seconds,
            backoff_seconds=timer.elapsed,
            retries=self.resilience.retries - retries_before,
        )
        return outcome

    # -- cross-request batching ----------------------------------------------------
    #
    # With ``config.batching`` set, dispatch no longer executes a request
    # on the spot.  Instead its LLM demand is *planned* (the dry-run
    # planner of the executor / pipeline), pruned against the shared
    # mapping store and prompt caches, and enqueued into the
    # CrossRequestBatcher.  Flush events fire at the batcher's release
    # times; every group due at one instant flushes as a single *wave*
    # whose paid calls share one ``parallel_makespan`` pool — coalesced
    # batches are charged like the fan-out of a single request.  When the
    # wave lands, members with no work left are finalized: the query
    # replays against the request's private overlay store (all flushed
    # answers, zero LLM calls) and the outcome is delivered under the
    # same deadline-clamp / breaker rules as the unbatched path.

    def _begin_batched(self, request: QueryRequest) -> None:
        """Plan one dispatched request's LLM work into the batcher."""
        start = self.clock.now()
        queue_wait = start - request.arrival
        try:
            self.breaker.before_call()
        except CircuitOpenError:
            finish = min(
                start + self.config.base_overhead, request.deadline_at
            )
            outcome = RequestOutcome(
                request=request,
                status=DEGRADED,
                reason="breaker_open",
                finish_time=finish,
                queue_wait=queue_wait,
                service_seconds=finish - start,
            )
            self._trace_outcome(outcome, start=start)
            self._push_event(outcome.finish_time, "finish", outcome)
            return
        batcher = self.batcher
        member = PendingRequest(request, start=start, queue_wait=queue_wait)
        persist = batcher.config.persist
        if request.pipeline == "udf":
            state = self._udf_state(request.database)
            executor = state.executor
            map_requests, qa_prompts = executor.plan_key_requests(request.sql)
            for call, keys in map_requests:
                signature = call.signature()
                wanted = list(dict.fromkeys(keys))
                if persist:
                    known = self.mapping_store.peek(signature, wanted)
                    # all-or-nothing, matching the executor's store-first
                    # lookup: partial coverage regenerates the whole
                    # occurrence (identical chunk prompts then hit the
                    # prompt cache for free at flush time)
                    if len(known) == len(wanted):
                        member.overlay.put(signature, known)
                        batcher.keys_from_store += len(known)
                        wanted = []
                already = member.overlay.peek(signature, wanted)
                if already:
                    wanted = [k for k in wanted if k not in already]
                if wanted:
                    # mc=1 keeps the executor's own chunk size (the
                    # byte-identity contract); with real concurrency the
                    # former fills policy-sized batches instead
                    chunk = (
                        executor._batch_size_for(call)
                        if self.config.max_concurrent == 1
                        else batcher.chunk_size_for(call)
                    )
                    batcher.enqueue_keys(
                        request.database, call, wanted, member,
                        chunk_size=chunk, now=start,
                    )
            for prompt in qa_prompts:
                if state.cache.peek(prompt) is None:
                    batcher.enqueue_prompt(
                        request.database, "udf:qa", prompt, member,
                        latency_bearing=False, now=start,
                    )
                else:
                    batcher.prompts_from_cache += 1
        else:
            hstate = self._hqdl_state(request.database)
            if hstate.db is None:
                for prompt, label in hstate.pipeline.plan_calls():
                    if hstate.cache.peek(prompt) is None:
                        batcher.enqueue_prompt(
                            request.database, label, prompt, member,
                            latency_bearing=True, now=start,
                        )
                    else:
                        batcher.prompts_from_cache += 1
        if member.outstanding == 0:
            # everything already covered by shared state: finalize at once
            outcome = self._finalize_batched(member, start)
            self._push_event(outcome.finish_time, "finish", outcome)
            return
        if self.config.max_concurrent == 1:
            # a second request can never be in service concurrently, so a
            # window could never coalesce anything: release immediately
            # (the byte-identity contract with the unbatched path)
            batcher.expedite(start)
            batcher.drain_releases()
            self._push_event(start, "flush", None)
            return
        for when in batcher.drain_releases():
            self._push_event(max(when, start), "flush", None)

    def _on_flush(self) -> None:
        """Flush every due group as one wave and schedule its landing."""
        now = self.clock.now()
        wave = self.batcher.collect_due(
            now, retain_tails=self.config.max_concurrent != 1
        )
        for when in self.batcher.drain_releases():
            # retained tails re-opened on a fresh window need their own
            # flush events
            self._push_event(max(when, now), "flush", None)
        if not wave:
            return
        members: dict[PendingRequest, int] = {}
        for group in wave:
            for _, requesters in group.items:
                for member in requesters:
                    members[member] = members.get(member, 0) + 1
        # the wave's dispatch budget ends at the earliest member deadline:
        # the batcher already guarantees no group is *released* late, and
        # this Deadline guarantees no retry backoff overruns it either
        wave_timer = ServiceTimer(now)
        min_deadline = min(m.request.deadline_at for m in members)
        deadline = Deadline(max(min_deadline - now, 1e-9), wave_timer)
        wave_sizes: list[tuple[int, int]] = []
        wave_calls = 0
        for group in wave:
            wave_calls += self._flush_group(group, deadline, wave_sizes, now)
        land = (
            now
            + parallel_makespan(wave_sizes, self.config.workers)
            + wave_timer.elapsed
        )
        if self._trace is not None:
            # one shared dispatch record, linked from every member trace
            wave_id = self._trace.next_wave_id()
            ordered = sorted(members, key=lambda m: m.request.request_id)
            for member in ordered:
                member.waves.append(wave_id)
            self._trace.add_wave(
                WaveRecord(
                    wave_id=wave_id,
                    flush=now,
                    land=land,
                    members=tuple(m.request.trace_id for m in ordered),
                    items=sum(len(group.items) for group in wave),
                    calls=wave_calls,
                )
            )
        # a member never waits past its own deadline for the wave: its
        # share lands (and it finalizes, degraded) at the deadline
        # instant, exactly when the unbatched path would give up — the
        # wave itself still lands at ``land`` for everyone else
        by_when: dict[float, list[tuple[PendingRequest, int]]] = {}
        for member, item_count in members.items():
            when = min(land, member.request.deadline_at)
            by_when.setdefault(when, []).append((member, item_count))
        for when in sorted(by_when):
            self._push_event(when, "land", by_when[when])

    def _flush_group(
        self,
        group: FlushedGroup,
        deadline: Deadline,
        wave_sizes: list[tuple[int, int]],
        now: float,
    ) -> int:
        """Dispatch one flushed group; results fan out to every requester.

        Returns the number of calls the group formed (trace bookkeeping).
        """
        batcher = self.batcher
        requests_in_group = len(
            {m for _, requesters in group.items for m in requesters}
        )
        calls_formed = 0
        if group.kind == "map":
            executor = self._udf_state(group.database).executor
            signature = group.call.signature()
            keys = [payload for payload, _ in group.items]
            requesters_of = dict(group.items)
            chunks = batched(keys, group.chunk_size)
            prompts = [
                executor._map_prompt(group.call, chunk) for chunk in chunks
            ]
            outcomes = executor.dispatcher.dispatch(
                executor.client, prompts, labels="udf:map",
                capture_errors=True, deadline=deadline,
            )
            calls_formed = len(chunks)
            for chunk, outcome in zip(chunks, outcomes):
                item_requesters = [requesters_of[key] for key in chunk]
                fill = len(chunk) / group.chunk_size
                if outcome.error is not None:
                    # same tolerance as the per-request path: the failed
                    # batch degrades to NULLs for every waiting request
                    for key, requesters in zip(chunk, item_requesters):
                        for member in requesters:
                            member.overlay.put(signature, {key: None})
                            member.degraded_keys += 1
                    self.resilience.record_degraded(len(chunk))
                    batcher.settle_call(item_requesters, None, fill=fill)
                    continue
                answers = _parse_map_answers(outcome.response.text, len(chunk))
                values = dict(zip(chunk, answers))
                for key, requesters in zip(chunk, item_requesters):
                    for member in requesters:
                        member.overlay.put(signature, {key: values[key]})
                if batcher.config.persist and executor.publish_mappings:
                    # only real answers, like the executor: degraded or
                    # drifted NULLs must not pin other requests to NULL
                    self.mapping_store.put(
                        signature,
                        {k: v for k, v in values.items() if v is not None},
                    )
                usage = outcome.response.usage
                if usage.calls and group.latency_bearing:
                    wave_sizes.append(
                        (usage.input_tokens, usage.output_tokens)
                    )
                batcher.settle_call(item_requesters, usage, fill=fill)
                if self._tel.timeseries.enabled:
                    self._tel.timeseries.observe(
                        "serve.batch_occupancy", now, fill
                    )
        else:
            prompts = [payload for payload, _ in group.items]
            if group.label.startswith("hqdl:"):
                pipeline = self._hqdl[group.database].pipeline
                dispatcher, client = pipeline._dispatcher, pipeline.client
            else:
                executor = self._udf_state(group.database).executor
                dispatcher, client = executor.dispatcher, executor.client
            outcomes = dispatcher.dispatch(
                client, prompts, labels=group.label,
                capture_errors=True, deadline=deadline,
            )
            calls_formed = len(prompts)
            for (prompt, requesters), outcome in zip(group.items, outcomes):
                if outcome.error is not None:
                    # left uncached: finalize re-attempts (and degrades
                    # there if the upstream is still failing)
                    batcher.settle_call([requesters], None)
                    continue
                # the dispatch went through the group's CachingClient, so
                # the completion is already cached for finalize
                usage = outcome.response.usage
                if usage.calls and group.latency_bearing:
                    wave_sizes.append(
                        (usage.input_tokens, usage.output_tokens)
                    )
                batcher.settle_call([requesters], usage)
        self._tel.flight.record(
            now, "batch_flush",
            label=group.label, trigger=group.trigger,
            items=len(group.items), calls=calls_formed,
            requests=requests_in_group,
        )
        return calls_formed

    def _on_land(self, payload: list[tuple[PendingRequest, int]]) -> None:
        """A wave landed: settle each member, finalize the completed ones."""
        land = self.clock.now()
        for member, item_count in payload:
            member.outstanding -= item_count
            if member.outstanding == 0:
                outcome = self._finalize_batched(member, land)
                self._push_event(outcome.finish_time, "finish", outcome)

    def _finalize_batched(
        self, member: PendingRequest, land: float
    ) -> RequestOutcome:
        """Replay the query against the member's overlay; deliver the outcome.

        Every flushed answer is in the overlay (or the prompt caches), so
        this replay is LLM-free in the common case; residual paid calls
        (e.g. a QA retry after a failed flush) are charged on top of the
        landing instant, exactly as the unbatched cost model would.
        """
        request = member.request
        timer = ServiceTimer(land)
        remaining = max(request.deadline_at - land, 1e-9)
        retries_before = self.resilience.retries
        usage_before = self.meter.total
        error: Optional[ReproError] = None
        rows: Optional[int] = None
        degraded_keys = 0
        call_sizes: list[tuple[int, int]] = []
        if request.pipeline == "udf":
            executor = self._udf_state(request.database).executor
            executor.deadline = Deadline(remaining, timer)
            saved_store = executor.mapping_store
            executor.mapping_store = member.overlay
            try:
                result, report = executor.execute_with_report(request.sql)
                rows = len(result.rows)
                degraded_keys = report.degraded_keys
                call_sizes = list(report.call_sizes)
            except ReproError as exc:
                error = exc
            finally:
                executor.mapping_store = saved_store
                executor.deadline = None
        else:
            state = self._hqdl_state(request.database)
            pipeline = state.pipeline
            try:
                if state.db is None:
                    mark = len(state.recorder.sizes)
                    pipeline.deadline = Deadline(remaining, timer)
                    try:
                        generation = pipeline.generate_all()
                    finally:
                        pipeline.deadline = None
                    state.generation_sizes = state.recorder.sizes[mark:]
                    state.db = pipeline.build_expanded_database(generation)
                    call_sizes = list(state.generation_sizes)
                result = pipeline.answer(
                    state.db, self.swan.question(request.qid)
                )
                rows = len(result.rows)
            except ReproError as exc:
                error = exc
        usage_delta = self.meter.total - usage_before
        tail_llm = parallel_makespan(call_sizes, self.config.workers)
        tail = self.config.base_overhead + tail_llm + timer.elapsed
        service = (land - member.start) + tail
        self._service_ewma = (
            service
            if self._service_ewma is None
            else 0.8 * self._service_ewma + 0.2 * service
        )
        finish = land + tail
        degraded_keys += member.degraded_keys
        if error is not None:
            status, reason = DEGRADED, "error"
            finish = min(finish, request.deadline_at)
            self.breaker.record_failure()
        elif finish > request.deadline_at:
            status, reason = DEGRADED, "deadline"
            degraded_keys = max(degraded_keys, rows or 0)
            finish = request.deadline_at
            self.breaker.record_failure()
        elif degraded_keys:
            status, reason = DEGRADED, (
                "deadline" if self.config.fault_rate <= 0 else "faults"
            )
            self.breaker.record_success()
        else:
            status, reason = SERVED, None
            self.breaker.record_success()
        outcome = RequestOutcome(
            request=request,
            status=status,
            reason=reason,
            finish_time=finish,
            queue_wait=member.queue_wait,
            service_seconds=finish - member.start,
            rows=rows,
            llm_calls=member.llm_calls + usage_delta.calls,
            input_tokens=member.input_tokens + usage_delta.input_tokens,
            output_tokens=member.output_tokens + usage_delta.output_tokens,
            degraded_keys=degraded_keys,
            shared_tokens=member.shared_tokens,
            partial=status == DEGRADED and rows is not None,
        )
        self._trace_outcome(
            outcome,
            start=member.start,
            land=land,
            overhead_seconds=self.config.base_overhead,
            llm_seconds=tail_llm,
            backoff_seconds=timer.elapsed,
            retries=self.resilience.retries - retries_before,
            waves=member.waves,
        )
        return outcome
