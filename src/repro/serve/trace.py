"""Request-scoped serving traces, materialized after the fact.

The serving layer never opens live tracer spans on the hot path —
that would put telemetry state inside the event loop and risk the
byte-identity guarantee.  Instead the server records one lightweight
:class:`TraceRecord` of plain numbers per terminal outcome (plus one
:class:`WaveRecord` per batch flush), and span *trees* are built on
demand from those numbers by :func:`materialize_request` — only for the
traces the tail sampler kept, or the one request ``explain-request``
is asked about.

The reconstruction is exact: every child level tiles its parent's
interval, so the per-stage self-time decomposition attributes 100% of
a request's offer-to-finish virtual time with zero unaccounted.  Span
shapes by outcome:

- admission shed — zero-width root at arrival with a ``serve:admission``
  marker carrying the shed reason;
- reaped in queue — ``serve:queue`` spans the whole life up to the
  deadline, with zero-width ``serve:queue.aging`` events at every
  aging promotion;
- unbatched dispatch — ``serve:service`` splits into sequential
  ``serve:overhead`` / ``serve:llm`` / ``llm:backoff`` segments (each
  clamped at the deadline, mirroring the server's own clamp);
- batched dispatch — ``serve:batch.wait`` holds zero-width
  ``serve:batch.dispatch`` events *linked* to the shared
  ``serve:batch.wave`` spans (one wave span is linked from every member
  request), then ``serve:settle`` carries the replay tail.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.obs.trace import Span, closed_span
from repro.serve.request import DEGRADED, REJECTED

#: admission-shed reasons (no dispatch ever happened)
_SHED_REASONS = ("queue_full", "tenant_quota", "token_budget")


@dataclass
class TraceRecord:
    """Everything needed to rebuild one request's span tree.

    ``start`` is the dispatch instant (None when the request never
    left the queue); ``land`` is the batched-path landing instant
    (None on the unbatched path).  Component seconds decompose the
    service/settle tail exactly as the server computed it.
    """

    request_id: int
    trace_id: str
    tenant: str
    database: str
    pipeline: str
    priority: int
    arrival: float
    deadline_at: float
    status: str
    reason: Optional[str]
    finish: float
    queue_wait: float = 0.0
    start: Optional[float] = None
    land: Optional[float] = None
    overhead_seconds: float = 0.0
    llm_seconds: float = 0.0
    backoff_seconds: float = 0.0
    retries: int = 0
    llm_calls: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    shared_tokens: int = 0
    degraded_keys: int = 0
    rows: Optional[int] = None
    #: instants where queue aging promoted the request by one class
    promotions: tuple[float, ...] = ()
    #: batch wave ids this request's calls rode on, in flush order
    waves: tuple[str, ...] = ()

    @property
    def latency(self) -> float:
        return max(0.0, self.finish - self.arrival)

    def summary(self) -> dict:
        """The compact form kept in bench trace payloads."""
        record = {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "tenant": self.tenant,
            "database": self.database,
            "pipeline": self.pipeline,
            "status": self.status,
            "reason": self.reason,
            "arrival": round(self.arrival, 6),
            "finish": round(self.finish, 6),
            "latency": round(self.latency, 6),
            "queue_wait": round(self.queue_wait, 6),
            "llm_seconds": round(self.llm_seconds, 6),
            "llm_calls": self.llm_calls,
            "retries": self.retries,
        }
        if self.waves:
            record["waves"] = list(self.waves)
        if self.shared_tokens:
            record["shared_tokens"] = self.shared_tokens
        return record


@dataclass(frozen=True)
class WaveRecord:
    """One batch flush shared by several requests."""

    wave_id: str
    flush: float
    land: float
    #: trace ids of every member request, in request-id order
    members: tuple[str, ...]
    items: int
    calls: int


class ServeTraceLog:
    """Passive sink for trace records; the server writes, nobody reads
    until the run is over."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self.waves: list[WaveRecord] = []
        self._by_trace: dict[str, TraceRecord] = {}
        self._waves_by_id: dict[str, WaveRecord] = {}

    def add(self, record: TraceRecord) -> None:
        self.records.append(record)
        self._by_trace[record.trace_id] = record

    def next_wave_id(self) -> str:
        return f"w{len(self.waves) + 1}"

    def add_wave(self, wave: WaveRecord) -> None:
        self.waves.append(wave)
        self._waves_by_id[wave.wave_id] = wave

    def get(self, trace_id: str) -> Optional[TraceRecord]:
        return self._by_trace.get(trace_id)

    def wave(self, wave_id: str) -> Optional[WaveRecord]:
        return self._waves_by_id.get(wave_id)

    def by_request_id(self, request_id: int) -> Optional[TraceRecord]:
        for record in self.records:
            if record.request_id == request_id:
                return record
        return None


def materialize_request(
    record: TraceRecord,
    waves: Optional[Mapping[str, WaveRecord]] = None,
) -> Span:
    """Rebuild one request's span tree; children tile exactly.

    Span ids are pure functions of the trace id (root ``t000042``,
    children ``t000042.1``, ``t000042.2``, ... in depth-first order),
    so traces are byte-reproducible across runs.
    """
    waves = waves or {}
    seq = itertools.count(1)

    def child(
        name: str, parent: Span, start: float, end: float, **attrs: object
    ) -> Span:
        return closed_span(
            name, f"{record.trace_id}.{next(seq)}", parent, start, end,
            attributes=attrs or None,
        )

    root_attrs: dict[str, object] = {
        "request_id": record.request_id,
        "tenant": record.tenant,
        "database": record.database,
        "pipeline": record.pipeline,
        "priority": record.priority,
        "status": record.status,
    }
    if record.reason:
        root_attrs["reason"] = record.reason
    root = closed_span(
        "serve:request", record.trace_id, None,
        record.arrival, record.finish, attributes=root_attrs,
    )
    if record.status == REJECTED and record.reason in _SHED_REASONS:
        child(
            "serve:admission", root, record.arrival, record.arrival,
            outcome="shed", reason=record.reason,
        )
        return root
    child(
        "serve:admission", root, record.arrival, record.arrival,
        outcome="admitted",
    )
    queue_end = record.start if record.start is not None else record.finish
    queue = child(
        "serve:queue", root, record.arrival, queue_end,
        wait=round(record.queue_wait, 6),
    )
    for instant in record.promotions:
        child("serve:queue.aging", queue, instant, instant, promoted_by=1)
    if record.status == REJECTED:
        # the deadline expired while queued — the queue span is the life
        queue.set("outcome", "deadline_expired")
        return root
    assert record.start is not None
    if record.land is not None:
        wait = child(
            "serve:batch.wait", root, record.start, record.land,
            waves=len(record.waves),
        )
        for wave_id in record.waves:
            wave = waves.get(wave_id)
            instant = wave.flush if wave is not None else record.start
            attrs: dict[str, object] = {"link": wave_id}
            if wave is not None:
                attrs["members"] = len(wave.members)
                attrs["calls"] = wave.calls
            child("serve:batch.dispatch", wait, instant, instant, **attrs)
        service = child("serve:settle", root, record.land, record.finish)
        base = record.land
    else:
        service = child(
            "serve:service", root, record.start, record.finish
        )
        base = record.start
    if record.status == DEGRADED and record.reason == "breaker_open":
        child(
            "serve:degrade", service, base, record.finish,
            reason="breaker_open",
        )
        return root
    # sequential segments, each clamped at the finish instant exactly
    # like the server clamps service time at the deadline
    b1 = min(base + record.overhead_seconds, record.finish)
    b2 = min(b1 + record.llm_seconds, record.finish)
    child("serve:overhead", service, base, b1)
    child(
        "serve:llm", service, b1, b2,
        calls=record.llm_calls,
        input_tokens=record.input_tokens,
        output_tokens=record.output_tokens,
    )
    child(
        "llm:backoff", service, b2, record.finish, retries=record.retries
    )
    if record.status == DEGRADED:
        child(
            "serve:degrade", service, record.finish, record.finish,
            reason=record.reason, degraded_keys=record.degraded_keys,
        )
    return root


def materialize_wave(wave: WaveRecord) -> Span:
    """The shared dispatch span every member request links to."""
    return closed_span(
        "serve:batch.wave", wave.wave_id, None, wave.flush, wave.land,
        attributes={
            "wave": wave.wave_id,
            "members": ",".join(wave.members),
            "items": wave.items,
            "calls": wave.calls,
        },
    )


def materialize_kept(
    log: ServeTraceLog, kept: Mapping[str, str]
) -> list[Span]:
    """Span forest for the sampler's kept set: request roots (trace-id
    order, each tagged with its keep reason) plus every wave span any
    kept request links to (flush order)."""
    waves = {wave.wave_id: wave for wave in log.waves}
    roots: list[Span] = []
    linked: set[str] = set()
    for record in sorted(log.records, key=lambda r: r.trace_id):
        reason = kept.get(record.trace_id)
        if reason is None:
            continue
        root = materialize_request(record, waves)
        root.set("sampled", reason)
        roots.append(root)
        linked.update(record.waves)
    for wave in log.waves:
        if wave.wave_id in linked:
            roots.append(materialize_wave(wave))
    return roots
