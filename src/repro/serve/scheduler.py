"""Priority scheduling with starvation-free aging.

Two (or more) priority classes — interactive traffic should overtake
batch backfill — but strict priority starves: under sustained
interactive load a batch request could wait forever.  The queue
therefore ranks by *effective* priority::

    effective(request, now) = priority - (now - arrival) / aging_interval

Every ``aging_interval`` seconds of waiting promotes a request by one
full class, so any queued request eventually outranks fresh arrivals of
every class — bounded staleness instead of starvation.  Ties break by
arrival order (then request id), keeping the schedule deterministic.

Pops are O(n) scans rather than a heap: effective priority changes with
``now``, so static heap keys would go stale, and serving queues here are
bounded (the admission ``queue_limit``) — correctness and determinism
are worth more than O(log n).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs import NULL_TELEMETRY, Telemetry
from repro.serve.request import QueryRequest


class AgingPriorityQueue:
    """A deterministic aged-priority queue of :class:`QueryRequest`.

    With windowed telemetry attached, every push/pop also lands a
    queue-depth sample (and pops a queue-wait sample) in the window of
    the instant it happened — purely passive, scheduling is unchanged.
    """

    def __init__(
        self,
        aging_interval: float = 10.0,
        *,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if aging_interval <= 0:
            raise ValueError(
                f"aging_interval must be > 0, got {aging_interval}"
            )
        self.aging_interval = aging_interval
        self._entries: list[QueryRequest] = []
        self._ts = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        ).timeseries

    def __len__(self) -> int:
        return len(self._entries)

    def depth_for(self, tenant: str) -> int:
        return sum(1 for r in self._entries if r.tenant == tenant)

    def pending(self) -> list[QueryRequest]:
        """Queued requests in arrival order (a snapshot, not a view)."""
        return sorted(
            self._entries, key=lambda r: (r.arrival, r.request_id)
        )

    def promotion_instants(
        self, request: QueryRequest, start: float, end: float
    ) -> list[float]:
        """Instants in ``(start, end]`` where aging promoted ``request``.

        Every ``aging_interval`` seconds of queueing lowers the
        effective priority by one full class — these are the moments a
        trace should mark as re-prioritization events.
        """
        instants: list[float] = []
        step = 1
        while True:
            instant = request.arrival + step * self.aging_interval
            if instant > end:
                break
            if instant > start:
                instants.append(instant)
            step += 1
        return instants

    def effective_priority(self, request: QueryRequest, now: float) -> float:
        age = max(0.0, now - request.arrival)
        return request.priority - age / self.aging_interval

    def push(self, request: QueryRequest) -> None:
        self._entries.append(request)
        if self._ts.enabled:
            # arrivals are pushed at their arrival instant
            self._ts.observe(
                "serve.queue.depth", request.arrival, len(self._entries)
            )

    def pop_expired(self, now: float) -> list[QueryRequest]:
        """Remove and return every queued request whose deadline passed.

        Order follows the deadline instants (then request id), which is
        the order the clients actually gave up in.
        """
        expired = [r for r in self._entries if r.deadline_at <= now]
        if expired:
            self._entries = [r for r in self._entries if r.deadline_at > now]
            expired.sort(key=lambda r: (r.deadline_at, r.request_id))
        return expired

    def pop(
        self,
        now: float,
        *,
        eligible: Optional[Callable[[QueryRequest], bool]] = None,
    ) -> Optional[QueryRequest]:
        """Remove and return the best eligible request, or None.

        ``eligible`` lets the caller veto requests without dequeuing
        them — e.g. a tenant at its concurrency cap stays queued (and
        keeps aging) rather than being shed.
        """
        best_index = -1
        best_key: Optional[tuple] = None
        for index, request in enumerate(self._entries):
            if eligible is not None and not eligible(request):
                continue
            key = (
                self.effective_priority(request, now),
                request.arrival,
                request.request_id,
            )
            if best_key is None or key < best_key:
                best_index, best_key = index, key
        if best_index < 0:
            return None
        request = self._entries.pop(best_index)
        if self._ts.enabled:
            self._ts.observe(
                "serve.queue.wait", now, max(0.0, now - request.arrival)
            )
            self._ts.observe("serve.queue.depth", now, len(self._entries))
        return request
