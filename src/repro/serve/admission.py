"""Admission control: shed load at the front door, with receipts.

Overloaded servers that queue everything fail everything — latency grows
without bound and every client times out.  The
:class:`AdmissionController` instead refuses work it cannot serve in
time, at arrival, with a typed
:class:`~repro.errors.AdmissionRejectedError` carrying a stable reason
and a retry-after hint.  Three independent gates, checked in order:

1. **queue depth** (``queue_limit``) — global backpressure: once the
   scheduler's queue is full, new arrivals shed with ``queue_full``;
2. **tenant queue quota** (:attr:`TenantPolicy.max_queued`) — one noisy
   tenant cannot occupy the whole queue; its excess sheds with
   ``tenant_quota`` while other tenants still admit;
3. **token budget** (:attr:`TenantPolicy.token_budget`) — a tenant whose
   completed requests already spent their token allowance sheds with
   ``token_budget`` until the operator raises it.

The controller is also the accounting authority: every offered request
increments exactly one of ``admitted`` or ``shed`` (:meth:`accounted`
checks the balance), which the server's three-way outcome invariant
builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AdmissionRejectedError
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.serve.request import QueryRequest


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission limits; ``None`` means unlimited.

    ``max_concurrent`` is enforced at *dispatch* (the scheduler skips
    the tenant's requests while it is at its cap) rather than admission:
    queued-but-not-running work should wait, not shed.
    """

    name: str
    max_queued: Optional[int] = None
    max_concurrent: Optional[int] = None
    token_budget: Optional[int] = None

    def __post_init__(self) -> None:
        for label in ("max_queued", "max_concurrent", "token_budget"):
            value = getattr(self, label)
            if value is not None and value < 1:
                raise ValueError(f"{label} must be >= 1 or None, got {value}")


class AdmissionController:
    """The admission gate plus per-tenant bookkeeping behind it."""

    def __init__(
        self,
        queue_limit: int,
        policies: Optional[dict[str, TenantPolicy]] = None,
        *,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self.queue_limit = queue_limit
        self.policies = dict(policies) if policies else {}
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.shed_by_reason: dict[str, int] = {}
        #: requests currently admitted but not yet dispatched, per tenant
        self.queued: dict[str, int] = {}
        #: requests currently executing, per tenant
        self.in_service: dict[str, int] = {}
        #: tokens charged to completed requests, per tenant
        self.tokens_spent: dict[str, int] = {}
        #: of those, tokens attributed from LLM calls *shared* with other
        #: requests by the cross-request batcher — the fairly split cost
        #: of coalesced batches, a subset of ``tokens_spent``
        self.tokens_shared: dict[str, int] = {}

    def policy_for(self, tenant: str) -> Optional[TenantPolicy]:
        return self.policies.get(tenant)

    def total_queued(self) -> int:
        return sum(self.queued.values())

    def admit(
        self, request: QueryRequest, *, retry_after: Optional[float] = None
    ) -> Optional[AdmissionRejectedError]:
        """Admit ``request`` or return the typed rejection (never raises).

        Exactly one of ``admitted``/``shed`` is incremented per call, so
        ``offered == admitted + shed`` holds at every instant.
        """
        self.offered += 1
        rejection = self._check(request, retry_after)
        # admission decisions happen at the request's arrival instant,
        # so telemetry is timestamped from the request, not a clock
        if rejection is not None:
            self.shed += 1
            self.shed_by_reason[rejection.reason] = (
                self.shed_by_reason.get(rejection.reason, 0) + 1
            )
            if self._tel.timeseries.enabled:
                self._tel.timeseries.record(
                    "admission.shed", request.arrival,
                    tenant=request.tenant, reason=rejection.reason,
                )
            self._tel.flight.record(
                request.arrival, "shed",
                tenant=request.tenant, reason=rejection.reason,
                request_id=request.request_id, trace_id=request.trace_id,
            )
            return rejection
        self.admitted += 1
        self.queued[request.tenant] = self.queued.get(request.tenant, 0) + 1
        if self._tel.timeseries.enabled:
            self._tel.timeseries.record(
                "admission.admitted", request.arrival, tenant=request.tenant
            )
        self._tel.flight.record(
            request.arrival, "admit",
            tenant=request.tenant, request_id=request.request_id,
            trace_id=request.trace_id,
        )
        return None

    def _check(
        self, request: QueryRequest, retry_after: Optional[float]
    ) -> Optional[AdmissionRejectedError]:
        if self.total_queued() >= self.queue_limit:
            return AdmissionRejectedError(
                f"queue is full ({self.queue_limit} requests)",
                reason="queue_full",
                retry_after=retry_after,
            )
        policy = self.policies.get(request.tenant)
        if policy is None:
            return None
        if (
            policy.max_queued is not None
            and self.queued.get(request.tenant, 0) >= policy.max_queued
        ):
            return AdmissionRejectedError(
                f"tenant {request.tenant!r} already has "
                f"{policy.max_queued} requests queued",
                reason="tenant_quota",
                retry_after=retry_after,
            )
        if (
            policy.token_budget is not None
            and self.tokens_spent.get(request.tenant, 0) >= policy.token_budget
        ):
            # no retry-after: a spent budget does not refill on its own
            return AdmissionRejectedError(
                f"tenant {request.tenant!r} spent its token budget "
                f"({policy.token_budget} tokens)",
                reason="token_budget",
            )
        return None

    def can_dispatch(self, request: QueryRequest) -> bool:
        """True unless the tenant is at its concurrency cap."""
        policy = self.policies.get(request.tenant)
        if policy is None or policy.max_concurrent is None:
            return True
        return self.in_service.get(request.tenant, 0) < policy.max_concurrent

    def on_dispatched(self, request: QueryRequest) -> None:
        self.queued[request.tenant] = self.queued.get(request.tenant, 1) - 1
        self.in_service[request.tenant] = (
            self.in_service.get(request.tenant, 0) + 1
        )

    def on_finished(
        self, request: QueryRequest, tokens: int = 0, *, shared_tokens: int = 0
    ) -> None:
        self.in_service[request.tenant] = (
            self.in_service.get(request.tenant, 1) - 1
        )
        if tokens:
            self.tokens_spent[request.tenant] = (
                self.tokens_spent.get(request.tenant, 0) + tokens
            )
        if shared_tokens:
            self.tokens_shared[request.tenant] = (
                self.tokens_shared.get(request.tenant, 0) + shared_tokens
            )

    def on_expired_in_queue(self, request: QueryRequest) -> None:
        """A queued request's deadline passed before dispatch."""
        self.queued[request.tenant] = self.queued.get(request.tenant, 1) - 1
        self._tel.flight.record(
            request.deadline_at, "deadline_reap",
            tenant=request.tenant, request_id=request.request_id,
            trace_id=request.trace_id,
        )

    def accounted(self) -> bool:
        """The admission balance: every offer admitted or shed, never both."""
        return self.offered == self.admitted + self.shed and self.shed == sum(
            self.shed_by_reason.values()
        )
