"""Shared fixtures for the benchmark suite.

Each bench regenerates one table or figure from the paper's evaluation
and prints it, then asserts the qualitative *shape* the paper reports
(who wins, roughly by how much, where the orderings fall).  Absolute
numbers are expected to differ — the substrate is a simulator, not the
authors' testbed; `EXPERIMENTS.md` records the side-by-side comparison.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import GoldResults
from repro.swan.benchmark import load_benchmark


@pytest.fixture(scope="session")
def swan():
    return load_benchmark()


@pytest.fixture(scope="session")
def gold(swan):
    return GoldResults(swan)


@pytest.fixture()
def show(capsys):
    """Print a regenerated table to the terminal, bypassing capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _show
