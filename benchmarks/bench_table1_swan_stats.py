"""Table 1 — statistics of the SWAN databases.

Paper values: European Football 7 tables, Formula One 13, California
Schools 3, Superhero 10; 11-12 columns dropped each; Formula One is the
largest by rows/table and Superhero the smallest.  Our synthetic worlds
keep the schema shapes, drop counts (exact for Superhero) and the size
ordering at reduced scale.
"""

from repro.harness import tables


def test_table1_swan_statistics(benchmark, swan, show):
    records, text = benchmark.pedantic(
        tables.table1, args=(swan,), rounds=3, iterations=1
    )
    show(text)

    by_name = {str(r["database"]).lower().replace(" ", ""): r for r in records}
    assert len(records) == 4

    # Superhero's drop count matches the paper's Table 1 exactly.
    assert by_name["superhero"]["cols_dropped"] == 11
    # every database lost columns
    assert all(r["cols_dropped"] > 0 for r in records)

    # the paper's size ordering: Formula One largest, Superhero smallest
    sizes = {name: r["rows_per_table"] for name, r in by_name.items()}
    assert sizes["formulaone"] == max(sizes.values())
    assert sizes["superhero"] == min(sizes.values())

    # California Schools has exactly the 3 tables of the Bird original
    assert by_name["californiaschools"]["tables"] == 3
