"""Table 5 — total tokens for zero-shot HQDL vs HQ UDFs.

Paper shape: HQ UDFs uses several times more tokens than HQDL (3.6x
input, 1.3x output in the paper) because its prompt-keyed cache cannot
reuse generations across differently-phrased questions, while HQDL
materializes each database once and reuses it for all 30 questions.
Our worlds are ~100x smaller, so fixed prompt overheads compress the
input ratio; the bench asserts the ordering and the call-count gap.
"""

from repro.harness import tables


def test_table5_token_costs(benchmark, swan, gold, show):
    records, text = benchmark.pedantic(
        tables.table5, args=(swan,), kwargs={"gold": gold}, rounds=1, iterations=1
    )
    show(text)

    hqdl = next(r for r in records if r["algorithm"] == "HQDL")
    udf = next(r for r in records if r["algorithm"] == "HQ UDFs")

    # HQ UDFs is the more expensive path on every axis the paper reports
    assert udf["input_tokens"] > hqdl["input_tokens"]
    assert udf["output_tokens"] > hqdl["output_tokens"]
    assert udf["calls"] > hqdl["calls"]

    # HQDL's calls equal the total number of expansion keys (generated once)
    total_keys = sum(
        len(world.truth[e.name])
        for world in swan.worlds.values()
        for e in world.expansions
    )
    assert hqdl["calls"] == total_keys
