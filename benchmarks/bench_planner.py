"""Run-level call planning: dedup, cache, and batching economics.

Regenerates the cold/planned/warm comparison behind ``bench-cache`` on
one database and asserts the properties the planner is sold on:

- prompt-mode planning is **free**: results, EX, and token totals are
  byte-identical to the unplanned run — the plan only front-loads calls;
- a warm rerun over the persistent prompt cache issues **zero** new
  LLM calls;
- pairs-mode planning with adaptive batching **pays less** than the
  unplanned baseline — fewer calls and fewer tokens, from cross-question
  (attribute, key) dedup plus fuller batches;
- the planner's stage spans (``plan:collect``/``plan:dedup``/
  ``plan:dispatch``) appear in the trace export.
"""

from repro.eval.report import format_table
from repro.harness.benchcache import measure_cache_bench

DATABASE = "superhero"
WORKERS = 4


def test_planner_cold_warm_and_pairs_economics(swan, show):
    payload = measure_cache_bench(
        swan, databases=[DATABASE], workers=WORKERS
    )
    rows = []
    for label, key in (
        ("baseline (cold, unplanned)", "baseline"),
        ("planned, prompt mode", "planned_prompt"),
        ("warm rerun (disk cache)", "warm"),
        ("planned, pairs + adaptive", "planned_pairs"),
    ):
        entry = payload[key]
        rows.append(
            [
                label,
                entry["llm_calls"],
                entry["input_tokens"] + entry["output_tokens"],
                f"{entry['ex'] * 100:.1f}%",
                f"{entry['parallel_seconds']:.0f} s",
            ]
        )
    show(format_table(
        ["Run", "LLM calls", "Tokens", "EX", f"Parallel x{WORKERS}"],
        rows,
        title=f"Call planning and persistent caching on {DATABASE} "
              f"({payload['model']}, {payload['shots']} shots).",
    ))

    baseline = payload["baseline"]
    planned = payload["planned_prompt"]
    warm = payload["warm"]
    pairs = payload["planned_pairs"]

    # prompt mode is behaviour-preserving, to the byte
    assert planned["byte_identical_to_baseline"]
    assert planned["llm_calls"] == baseline["llm_calls"]
    assert planned["input_tokens"] == baseline["input_tokens"]

    # the cross-question prompt overlap the plan deduplicates is real
    stats = planned["plan_stats"][DATABASE]
    assert stats["dedup_pct"] > 20.0, stats

    # warm rerun: the disk cache answers everything
    assert warm["zero_new_llm_calls"]
    assert warm["results_match_cold"]
    assert warm["persistent"][DATABASE]["hits"] > 0
    assert warm["persistent"][DATABASE]["stores"] == 0

    # pairs mode pays measurably less than the seed path
    assert pairs["llm_calls"] < baseline["llm_calls"]
    total_tokens = pairs["input_tokens"] + pairs["output_tokens"]
    baseline_tokens = baseline["input_tokens"] + baseline["output_tokens"]
    assert total_tokens < baseline_tokens
    assert pairs["calls_saved_pct"] >= 5.0, pairs["calls_saved_pct"]
    # 10 pp of EX headroom for model-noise drift from repacked prompts
    assert abs(pairs["ex_delta"]) <= 0.10, pairs["ex_delta"]

    # planner stages are visible in the trace export
    stages = {record["stage"] for record in payload["planner_stages"]}
    assert {"plan:collect", "plan:dedup", "plan:dispatch"} <= stages
