"""Real wall-clock speedup of the parallel LLM dispatcher.

The simulated-clock bench (``bench_future_parallel.py``) validates the
scheduler in virtual time; this one proves the threads are genuinely
concurrent: a :class:`~repro.llm.parallel.DelayedClient` injects a real
10 ms sleep per upstream call — a stand-in for network + generation
latency — and dispatching 40 prompts over 8 workers must beat the
sequential run by at least 3x (it typically lands near 7x; 3x leaves
headroom for a loaded CI machine).
"""

import time

from repro.eval.report import format_table
from repro.llm.client import ScriptedClient
from repro.llm.parallel import DelayedClient, ParallelDispatcher

PROMPTS = [f"prompt number {i:03d}" for i in range(40)]
DELAY_SECONDS = 0.010
WORKERS = 8


def _timed_dispatch(workers: int) -> tuple[float, int]:
    """Wall-clock seconds to dispatch all prompts, plus upstream calls."""
    client = DelayedClient(
        ScriptedClient({"prompt": "answer"}), delay_seconds=DELAY_SECONDS
    )
    dispatcher = ParallelDispatcher(workers)
    start = time.perf_counter()
    outcomes = dispatcher.dispatch(client, PROMPTS, labels="bench")
    elapsed = time.perf_counter() - start
    assert all(outcome.ok for outcome in outcomes)
    assert [outcome.text for outcome in outcomes] == ["answer"] * len(PROMPTS)
    return elapsed, client.upstream_calls


def test_parallel_dispatch_wall_clock_speedup(show):
    sequential, sequential_calls = _timed_dispatch(1)
    parallel, parallel_calls = _timed_dispatch(WORKERS)
    speedup = sequential / parallel
    show(format_table(
        ["Workers", "Wall-clock", "Upstream calls", "Speedup"],
        [
            [1, f"{sequential * 1000:.0f} ms", sequential_calls, "1.0x"],
            [WORKERS, f"{parallel * 1000:.0f} ms", parallel_calls, f"{speedup:.1f}x"],
        ],
        title=f"Real wall-clock dispatch of {len(PROMPTS)} calls with "
              f"{DELAY_SECONDS * 1000:.0f} ms injected per-call latency.",
    ))
    # every prompt is unique, so both runs pay every call upstream
    assert sequential_calls == parallel_calls == len(PROMPTS)
    assert speedup >= 3.0, f"only {speedup:.1f}x speedup at {WORKERS} workers"
