"""Table 4 — average F1 factuality of HQDL-generated data.

Paper shapes this bench asserts:

- factuality rises monotonically with demonstrations for both models,
  with a large 0→1-shot jump and small gains after;
- GPT-4 Turbo is consistently more factual than GPT-3.5 Turbo (paper:
  +5.5 points at 5 shots);
- absolute values run higher than the paper's because the synthetic
  worlds are far smaller and denser in famous entities (see
  EXPERIMENTS.md) — the bench asserts the ordering, not the level.
"""

from repro.harness import tables


def test_table4_data_factuality(benchmark, swan, gold, show):
    records, text = benchmark.pedantic(
        tables.table4, args=(swan,), kwargs={"gold": gold}, rounds=1, iterations=1
    )
    show(text)

    def f1(model, shots):
        return next(
            r["average_f1"]
            for r in records
            if r["model"] == model and r["shots"] == shots
        )

    for model in ("gpt-3.5-turbo", "gpt-4-turbo"):
        series = [f1(model, shots) for shots in (0, 1, 3, 5)]
        # monotone up to small plateau wiggles (paper has 47.1 -> 47.0)
        assert series[-1] > series[0]
        assert series[1] > series[0]
        # the 0->1 jump dominates the total gain
        assert series[1] - series[0] >= (series[-1] - series[0]) * 0.6

    # GPT-4 more factual at every shot count
    for shots in (0, 1, 3, 5):
        assert f1("gpt-4-turbo", shots) > f1("gpt-3.5-turbo", shots)
