"""Write ``BENCH_parallel.json`` — the machine-readable bench trajectory.

Same payload as ``python -m repro.harness bench-json``: sequential vs
parallel makespans of the reference full-scan hybrid query, measured on
the real dispatcher under a simulated clock, beside the analytical
bound.  CI diffs this file across PRs.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench_json.py [output-path]
"""

from __future__ import annotations

import json
import sys

from repro.harness.benchjson import write_bench_json


def main(argv: list[str]) -> int:
    path = argv[0] if argv else "BENCH_parallel.json"
    target, payload = write_bench_json(path)
    print(f"wrote {target}")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
