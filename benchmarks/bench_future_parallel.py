"""Future work — asynchronous / parallel LLM calls (Sections 4.3 and 6).

"BlendSQL ... plans to support parallelized LLM calls in the future to
further minimize query latency."  This bench used to print an analytical
estimate only; the dispatcher is now real, so it also *measures* the
scheduler: the same full-scan hybrid query re-runs with ``workers=4`` /
``workers=16`` under a :class:`~repro.llm.parallel.SimulatedClock`
(virtual time, no real sleeping) and the measured makespan is validated
against the analytical :func:`~repro.llm.batching.parallel_makespan`
bound — the scheduler must land within 10% of the LPT prediction.
"""

import pytest

from repro.eval.report import format_table
from repro.harness.benchjson import PLAYER_HEIGHT_QUERY, measure_parallel_makespans
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor

QUERY = PLAYER_HEIGHT_QUERY

WORKERS = (1, 4, 16)


@pytest.fixture(scope="module")
def report(swan):
    from repro.llm.chat import MockChatModel
    from repro.llm.oracle import KnowledgeOracle
    from repro.llm.profiles import get_profile

    world = swan.world("european_football")
    model = MockChatModel(KnowledgeOracle(world), get_profile("perfect"))
    with build_curated_database(world) as db:
        executor = HybridQueryExecutor(db, model, world)
        _, execution_report = executor.execute_with_report(QUERY)
    return execution_report


def test_future_parallel_execution(benchmark, report, show):
    latencies = benchmark.pedantic(
        lambda: {w: report.estimated_latency(workers=w) for w in WORKERS},
        rounds=3,
        iterations=1,
    )
    rows = [
        [workers, f"{latencies[workers]:.1f} s",
         f"{latencies[1] / latencies[workers]:.1f}x"]
        for workers in WORKERS
    ]
    show(format_table(
        ["Workers", "Estimated latency", "Speedup"],
        rows,
        title=f"Future work: parallel LLM calls over {report.llm_calls} "
              "batched requests (full player scan).",
    ))

    # parallelism helps and approaches the per-worker bound
    assert latencies[4] < latencies[1]
    assert latencies[16] <= latencies[4]
    assert latencies[1] / latencies[4] > 2.0  # near-linear at low counts


def test_measured_makespan_matches_analytical_bound(swan, show):
    """The real scheduler's simulated-clock makespan tracks the LPT bound."""
    payload = measure_parallel_makespans(swan)
    rows = [["1 (sequential)", f"{payload['sequential_seconds']:.1f} s", "-", "-"]]
    for workers, entry in payload["workers"].items():
        drift = (
            abs(entry["measured_seconds"] - entry["analytical_seconds"])
            / entry["analytical_seconds"]
        )
        rows.append(
            [
                workers,
                f"{entry['measured_seconds']:.1f} s",
                f"{entry['analytical_seconds']:.1f} s",
                f"{drift * 100:.2f}%",
            ]
        )
        # the dispatcher's dynamic schedule must land within 10% of the
        # analytical LPT makespan
        assert drift <= 0.10, (
            f"measured makespan at {workers} workers drifted {drift:.1%} "
            f"from the analytical bound"
        )
    show(format_table(
        ["Workers", "Measured makespan", "Analytical (LPT)", "Drift"],
        rows,
        title=f"Measured scheduler makespan vs analytical bound "
              f"({payload['llm_calls']} batched calls, simulated clock).",
    ))
    # and parallelism genuinely pays off
    four = payload["workers"]["4"]
    assert four["measured_seconds"] < payload["sequential_seconds"] / 2
