"""Future work — asynchronous / parallel LLM calls (Sections 4.3 and 6).

"BlendSQL ... plans to support parallelized LLM calls in the future to
further minimize query latency."  The executor records per-call token
sizes; this bench estimates the wall-clock latency of a full-scan hybrid
query under 1, 4 and 16 concurrent connections with the affine latency
model in :mod:`repro.llm.batching`.
"""

import pytest

from repro.eval.report import format_table
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor

QUERY = (
    "SELECT COUNT(*) FROM player WHERE "
    "CAST({{LLMMap('What is the height in centimeters of this football "
    "player?', 'player::player_name')}} AS INTEGER) > 180"
)

WORKERS = (1, 4, 16)


@pytest.fixture(scope="module")
def report(swan):
    from repro.llm.chat import MockChatModel
    from repro.llm.oracle import KnowledgeOracle
    from repro.llm.profiles import get_profile

    world = swan.world("european_football")
    model = MockChatModel(KnowledgeOracle(world), get_profile("perfect"))
    with build_curated_database(world) as db:
        executor = HybridQueryExecutor(db, model, world)
        _, execution_report = executor.execute_with_report(QUERY)
    return execution_report


def test_future_parallel_execution(benchmark, report, show):
    latencies = benchmark.pedantic(
        lambda: {w: report.estimated_latency(workers=w) for w in WORKERS},
        rounds=3,
        iterations=1,
    )
    rows = [
        [workers, f"{latencies[workers]:.1f} s",
         f"{latencies[1] / latencies[workers]:.1f}x"]
        for workers in WORKERS
    ]
    show(format_table(
        ["Workers", "Estimated latency", "Speedup"],
        rows,
        title=f"Future work: parallel LLM calls over {report.llm_calls} "
              "batched requests (full player scan).",
    ))

    # parallelism helps and approaches the per-worker bound
    assert latencies[4] < latencies[1]
    assert latencies[16] <= latencies[4]
    assert latencies[1] / latencies[4] > 2.0  # near-linear at low counts
