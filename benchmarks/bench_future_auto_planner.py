"""Future work — automated beyond-database question answering (Section 6).

"In future work, the process of answering beyond-database questions
should be fully automated."  This bench evaluates the preliminary
NL → hybrid-query planner over all 120 SWAN questions under a perfect
model (isolating planner quality from LLM error) and reports coverage
and planned-query accuracy.
"""

from collections import Counter

from repro.auto.planner import evaluate_planner
from repro.eval.report import format_table


def test_future_automated_planning(benchmark, swan, show):
    report = benchmark.pedantic(
        evaluate_planner, args=(swan,), rounds=1, iterations=1
    )

    reasons = Counter(
        reason.split(";")[0][:48] for reason in report.failures.values()
    )
    show(format_table(
        ["Questions", "Planned", "Coverage", "Exactly correct", "Planned accuracy"],
        [[report.total, report.planned, f"{report.coverage * 100:.0f}%",
          report.correct, f"{report.planned_accuracy * 100:.0f}%"]],
        title="Future work: automated NL -> hybrid query translation on SWAN.",
    ))
    show(format_table(
        ["Failure reason", "Count"],
        [[reason, count] for reason, count in reasons.most_common(6)],
        title="Where the preliminary planner stops.",
    ))

    assert report.total == 120
    # translates a third-plus of the benchmark and gets a third-plus of
    # those exactly right — preliminary, as the paper frames it
    assert report.coverage >= 1 / 3
    assert report.planned_accuracy >= 1 / 3
