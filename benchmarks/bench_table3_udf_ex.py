"""Table 3 — HQ UDFs execution accuracy on SWAN.

Paper shapes this bench asserts:

- HQ UDFs scores *below* HQDL at the same configuration (the paper
  credits HQDL's full-row, chain-of-thought-like generation and blames
  UDF batching errors);
- the few-shot gain is small compared to HQDL's (paper: +2.5% vs +14.1%);
- overall EX lands in the paper's ballpark (paper: 18.3% / 20.8%).
"""

from repro.harness import tables
from repro.harness.runner import run_hqdl


def test_table3_udf_execution_accuracy(benchmark, swan, gold, show):
    records, text = benchmark.pedantic(
        tables.table3, args=(swan,), kwargs={"gold": gold}, rounds=1, iterations=1
    )
    show(text)

    zero = next(r for r in records if r["shots"] == 0)
    five = next(r for r in records if r["shots"] == 5)

    # ballpark of the paper's overall numbers
    assert abs(zero["overall"] - 0.183) < 0.08
    assert abs(five["overall"] - 0.208) < 0.12

    # demonstrations help a little, not a lot
    assert 0.0 <= five["overall"] - zero["overall"] <= 0.12

    # HQDL beats HQ UDFs at the same model and shot count (Section 5.4)
    hqdl_zero = run_hqdl(swan, "gpt-3.5-turbo", 0, gold=gold)
    hqdl_five = run_hqdl(swan, "gpt-3.5-turbo", 5, gold=gold)
    assert hqdl_zero.overall_ex > zero["overall"]
    assert hqdl_five.overall_ex > five["overall"]
