"""Ablation — prompt caching and cross-question reuse (Section 5.5).

The paper's cost story: BlendSQL caches by exact prompt text, so
similar-but-differently-phrased questions regenerate everything, while
HQDL's materialized tables are reused by construction.  This bench
quantifies both: cache on/off for the UDF path, and the marginal cost of
HQDL answering 30 questions vs 1.
"""

import pytest

from repro.eval.report import format_table
from repro.harness.runner import run_udf
from repro.llm.cache import PromptCache
from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor


@pytest.fixture(scope="module")
def cache_stats(swan):
    """Run all superhero blend queries against one shared cache."""
    world = swan.world("superhero")
    model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-3.5-turbo"))
    cache = PromptCache()
    with build_curated_database(world) as db:
        executor = HybridQueryExecutor(db, model, world, cache=cache)
        for question in swan.questions_for("superhero"):
            executor.execute(question.blend_sql)
    return cache, model.meter.total


def test_ablation_prompt_cache(benchmark, swan, gold, cache_stats, show):
    benchmark.pedantic(
        run_udf,
        args=(swan, "gpt-3.5-turbo", 0),
        kwargs={"databases": ["superhero"], "gold": gold},
        rounds=1,
        iterations=1,
    )
    cache, usage = cache_stats
    show(format_table(
        ["Cache entries", "Hits", "Misses", "Hit rate", "Paid input tokens"],
        [[len(cache), cache.hits, cache.misses,
          f"{cache.hit_rate() * 100:.1f}%", usage.input_tokens]],
        title="Ablation: prompt-cache reuse across the 30 Super Hero queries.",
    ))

    # the cache does get some exact-prompt reuse within/across queries ...
    assert cache.hits > 0
    # ... but most prompts are unique because each query phrases its
    # question differently (Section 5.5's limited-reuse observation)
    assert cache.hit_rate() < 0.5


def test_hqdl_materialization_amortizes(benchmark, swan, gold, show):
    """HQDL's generation cost is paid once, not per question."""
    from repro.core.hqdl import HQDL
    from repro.llm.usage import UsageMeter

    world = swan.world("superhero")
    meter = UsageMeter()
    model = MockChatModel(
        KnowledgeOracle(world), get_profile("gpt-3.5-turbo"), meter=meter
    )
    pipeline = HQDL(world, model, shots=0)
    generation = benchmark.pedantic(pipeline.generate_all, rounds=1, iterations=1)
    generation_calls = meter.total.calls
    with pipeline.build_expanded_database(generation) as db:
        for question in swan.questions_for("superhero"):
            pipeline.answer(db, question)
    total_calls = meter.total.calls

    show(format_table(
        ["Generation calls", "Calls during 30 queries"],
        [[generation_calls, total_calls - generation_calls]],
        title="HQDL: LLM calls are all up-front; queries are free.",
    ))
    assert total_calls == generation_calls  # zero marginal LLM cost
