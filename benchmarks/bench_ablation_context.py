"""Ablation — retrieved database context in HQDL prompts (Section 4.3).

The paper's first optimization opportunity: "build a vector index on the
database values or rows and then fetch the relevant information based on
embedding similarity."  This bench runs HQDL generation with 0 and 3
retrieved context rows per prompt and reports the factuality gain
against the input-token cost.
"""

import pytest

from repro.core import HQDL
from repro.eval.factuality import database_factuality
from repro.eval.report import format_table
from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.llm.usage import UsageMeter

CONTEXT_ROWS = (0, 3)


def _generate(world, context_rows: int):
    meter = UsageMeter()
    model = MockChatModel(
        KnowledgeOracle(world), get_profile("gpt-3.5-turbo"), meter=meter
    )
    pipeline = HQDL(world, model, shots=0, context_rows=context_rows)
    generation = pipeline.generate_all()
    return database_factuality(world, generation), meter.total


@pytest.fixture(scope="module")
def sweep(swan):
    world = swan.world("superhero")
    return {rows: _generate(world, rows) for rows in CONTEXT_ROWS}


def test_ablation_retrieved_context(benchmark, swan, sweep, show):
    benchmark.pedantic(
        _generate, args=(swan.world("superhero"), 3), rounds=1, iterations=1
    )
    rows = [
        [count, f"{f1 * 100:.1f}%", usage.input_tokens]
        for count, (f1, usage) in sweep.items()
    ]
    show(format_table(
        ["Context rows", "Factuality (F1)", "Input tokens"],
        rows,
        title="Ablation: vector-index context retrieval "
              "(Super Hero, GPT-3.5, 0-shot).",
    ))

    baseline_f1, baseline_usage = sweep[0]
    context_f1, context_usage = sweep[3]
    # grounding context trades input tokens for factuality
    assert context_f1 > baseline_f1
    assert context_usage.input_tokens > baseline_usage.input_tokens
    # ... without changing the number of LLM calls
    assert context_usage.calls == baseline_usage.calls
