"""Table 2 — HQDL execution accuracy on SWAN.

Paper shapes this bench asserts:

- few-shot demonstrations improve overall EX for both models, with the
  bulk of the gain arriving by one shot;
- GPT-4 Turbo beats GPT-3.5 Turbo overall at every shot count;
- California Schools is the easiest database at 5 shots and European
  Football / Super Hero the hardest;
- overall EX lands in the paper's ballpark (paper: 24.2→38.3 for
  GPT-3.5, 31.6→40.0 for GPT-4).
"""

from repro.harness import tables


def test_table2_hqdl_execution_accuracy(benchmark, swan, gold, show):
    records, text = benchmark.pedantic(
        tables.table2, args=(swan,), kwargs={"gold": gold}, rounds=1, iterations=1
    )
    show(text)

    def overall(model, shots):
        return next(
            r["overall"] for r in records if r["model"] == model and r["shots"] == shots
        )

    for model in ("gpt-3.5-turbo", "gpt-4-turbo"):
        zero, five = overall(model, 0), overall(model, 5)
        # demonstrations help, and most of the gain is there by 1 shot
        assert five > zero
        assert overall(model, 1) - zero >= (five - zero) * 0.5

    # the stronger model wins at every shot count
    for shots in (0, 1, 3, 5):
        assert overall("gpt-4-turbo", shots) >= overall("gpt-3.5-turbo", shots)

    # ballpark of the paper's overall numbers (within ~8 points)
    assert abs(overall("gpt-3.5-turbo", 0) - 0.242) < 0.08
    assert abs(overall("gpt-3.5-turbo", 5) - 0.383) < 0.08
    assert abs(overall("gpt-4-turbo", 0) - 0.316) < 0.08
    assert abs(overall("gpt-4-turbo", 5) - 0.400) < 0.08

    # per-database difficulty ordering at five shots
    five_shot_gpt4 = next(
        r for r in records if r["model"] == "gpt-4-turbo" and r["shots"] == 5
    )
    databases = ("california_schools", "superhero", "formula_1", "european_football")
    values = {name: five_shot_gpt4[name] for name in databases}
    assert values["california_schools"] == max(values.values())
    assert values["european_football"] == min(values.values())
