"""Ablation — full-row vs single-cell generation (Section 5.4).

"Predicting all column values may be more advantageous than predicting a
single column value, as it mirrors a chain-of-thought process."  This
bench measures the same attribute generated both ways — through HQDL's
row completion and through single-cell LLMMap calls — and asserts the
row path is at least as accurate.
"""

import pytest

from repro.core.hqdl import HQDL
from repro.eval.report import format_table
from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor

ATTRIBUTE = "publisher_name"
QUESTION = "Which comic book publisher published this superhero?"


def _row_accuracy(world) -> float:
    model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-3.5-turbo"))
    pipeline = HQDL(world, model, shots=0)
    generation = pipeline.generate_table("superhero_info")
    expansion = world.expansion("superhero_info")
    index = expansion.generated_column_names().index(ATTRIBUTE)
    correct = total = 0
    for key, values in generation.rows.items():
        total += 1
        truth = world.truth_value("superhero_info", key, ATTRIBUTE)
        if values is not None and values[index] == truth:
            correct += 1
    return correct / total


def _cell_accuracy(world) -> float:
    model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-3.5-turbo"))
    with build_curated_database(world) as db:
        executor = HybridQueryExecutor(db, model, world)
        result = executor.execute(
            "SELECT superhero_name, full_name, "
            f"{{{{LLMMap('{QUESTION}', 'superhero::superhero_name', "
            "'superhero::full_name')}} AS pub FROM superhero"
        )
    correct = total = 0
    for hero, full, pub in result.rows:
        total += 1
        if pub == world.truth_value("superhero_info", (hero, full), ATTRIBUTE):
            correct += 1
    return correct / total


def test_ablation_row_vs_single_cell(benchmark, swan, show):
    world = swan.world("superhero")
    row_acc = benchmark.pedantic(_row_accuracy, args=(world,), rounds=1, iterations=1)
    cell_acc = _cell_accuracy(world)

    show(format_table(
        ["Generation mode", "Publisher accuracy"],
        [["full row (HQDL)", f"{row_acc * 100:.1f}%"],
         ["single cell, batched (UDF)", f"{cell_acc * 100:.1f}%"]],
        title="Ablation: full-row vs single-cell generation (GPT-3.5, 0-shot).",
    ))

    # the chain-of-thought-like full-row path wins (Section 5.4)
    assert row_acc > cell_acc
