"""Provenance bench: the recorder must observe without perturbing.

Three claims anchor the provenance subsystem at bench scale:

1. **NULL_PROVENANCE is free** — the default disabled recorder adds
   zero LLM calls and zero tokens: Usage is identical to a run that
   never heard of provenance.
2. **The enabled recorder is result-invisible** — same Usage, same EX,
   and the *virtual* makespan (SimulatedClock) is bit-identical, because
   recording happens outside the simulated latency path.
3. **Wall-clock overhead is bounded** — recording every call and cell
   of a full-database run costs a modest constant factor, measured here
   and written to ``BENCH_provenance.json`` for the trajectory record.
"""

import json
import time
from pathlib import Path

from repro.eval.attribution import attribute_misses, attribution_counts
from repro.harness.runner import run_udf
from repro.llm.batching import parallel_makespan
from repro.llm.parallel import SimulatedClock, SimulatedLatencyClient
from repro.obs import NULL_PROVENANCE, ProvenanceRecorder

DATABASES = ["superhero"]
MODEL = "gpt-3.5-turbo"
WORKERS = 4
#: generous bound — recording ~4k cells should cost far less than this
MAX_WALL_OVERHEAD = 1.75
#: wall-clock timing is noisy; take the best of N for each variant
REPEATS = 3

TARGET = Path(__file__).resolve().parents[1] / "BENCH_provenance.json"


def _timed_run(swan, gold, make_provenance):
    """Best-of-N wall time; a fresh recorder per repeat so cells don't
    accumulate across timing runs."""
    best = float("inf")
    run = provenance = None
    for _ in range(REPEATS):
        provenance = make_provenance()
        started = time.perf_counter()
        run = run_udf(
            swan, MODEL, 0, databases=DATABASES, gold=gold,
            workers=WORKERS, provenance=provenance,
        )
        best = min(best, time.perf_counter() - started)
    return run, best, provenance


def test_provenance_overhead(swan, gold, show):
    # -- claim 1: the disabled recorder is exactly the plain run --------------
    plain, wall_plain, _ = _timed_run(swan, gold, lambda: None)
    nulled, wall_nulled, _ = _timed_run(swan, gold, lambda: NULL_PROVENANCE)
    assert nulled.usage == plain.usage  # zero added LLM calls and tokens
    assert nulled.ex_by_db == plain.ex_by_db

    # -- claim 2: the enabled recorder changes no result ----------------------
    recorded, wall_recorded, recorder = _timed_run(
        swan, gold, ProvenanceRecorder
    )
    assert recorded.usage == plain.usage
    assert recorded.ex_by_db == plain.ex_by_db
    virtual_plain = parallel_makespan(plain.call_sizes, WORKERS)
    virtual_recorded = parallel_makespan(recorded.call_sizes, WORKERS)
    assert virtual_recorded == virtual_plain

    # recording actually happened, and completeness holds at bench scale
    stats = recorder.stats()
    assert stats["cells"] > 0
    non_null = sum(1 for cell in recorder.cells() if not cell.null)
    assert non_null == recorded.keys_generated

    # -- claim 3: bounded wall-clock overhead ---------------------------------
    overhead = wall_recorded / wall_plain if wall_plain > 0 else 1.0
    assert overhead < MAX_WALL_OVERHEAD, (
        f"recorder overhead {overhead:.2f}x exceeds {MAX_WALL_OVERHEAD}x"
    )

    questions = {
        q.qid: q
        for name in DATABASES
        for q in swan.questions_for(name)
    }
    counts = attribution_counts(
        attribute_misses(recorder, recorded.outcomes, questions, pipeline="udf")
    )

    payload = {
        "bench": "provenance_overhead",
        "model": MODEL,
        "databases": DATABASES,
        "workers": WORKERS,
        "repeats": REPEATS,
        "wall_seconds_plain": round(wall_plain, 4),
        "wall_seconds_null_provenance": round(wall_nulled, 4),
        "wall_seconds_recorded": round(wall_recorded, 4),
        "overhead_ratio": round(overhead, 4),
        "virtual_makespan_plain": round(virtual_plain, 4),
        "virtual_makespan_recorded": round(virtual_recorded, 4),
        "usage_identical": nulled.usage == plain.usage
        and recorded.usage == plain.usage,
        "provenance": stats,
        "attribution": counts,
    }
    TARGET.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    show(
        "Provenance recorder overhead "
        f"({MODEL}, {DATABASES[0]}, workers={WORKERS}):\n"
        f"  plain        {wall_plain:.3f}s wall, "
        f"virtual makespan {virtual_plain:.1f}s\n"
        f"  null recorder {wall_nulled:.3f}s wall (identical Usage)\n"
        f"  recording    {wall_recorded:.3f}s wall "
        f"({overhead:.2f}x, virtual makespan unchanged)\n"
        f"  recorded {stats['calls']} calls, {stats['cells']} cells "
        f"({stats['null_cells']} null); attribution {counts}\n"
        f"  written to {TARGET.name}"
    )


def test_virtual_clock_run_is_invisible_too(swan, gold):
    """Recording under the simulated-latency stack changes nothing either."""

    def _sim_run(provenance):
        clock = SimulatedClock(WORKERS)
        run = run_udf(
            swan, MODEL, 0, databases=DATABASES, gold=gold, workers=WORKERS,
            wrap_client=lambda model: SimulatedLatencyClient(model, clock),
            provenance=provenance,
        )
        return run, clock.now()

    plain, elapsed_plain = _sim_run(None)
    recorded, elapsed_recorded = _sim_run(ProvenanceRecorder())
    assert recorded.usage == plain.usage
    # clock.now() jitters ~0.5% run-to-run from thread scheduling even
    # without provenance; the deterministic virtual makespan (checked in
    # test_provenance_overhead) is the exact-equality claim
    assert abs(elapsed_recorded - elapsed_plain) / elapsed_plain < 0.02
