"""Figure 1 — the motivating example.

"List all the hero names from the Marvel Universe": the closed-world
curated database cannot answer (publisher information was dropped), while
the hybrid query over database + LLM returns the Marvel roster.
"""

from repro.harness import tables


def test_figure1_motivating_example(benchmark, swan, show):
    records, text = benchmark.pedantic(
        tables.figure1, args=(swan,), rounds=3, iterations=1
    )
    show(text)

    db_only = next(r for r in records if r["approach"] == "database-only")
    hybrid = next(r for r in records if r["approach"] == "hybrid")

    assert not db_only["answerable"]
    assert hybrid["answerable"]

    # the hybrid answer approximates the true Marvel roster
    world = swan.world("superhero")
    true_marvel = sum(
        1
        for entry in world.truth["superhero_info"].values()
        if entry["publisher_name"] == "Marvel Comics"
    )
    assert hybrid["rows"] > true_marvel * 0.6
    assert hybrid["rows"] < true_marvel * 1.4
