"""Ablation — UDF batch size (Section 5.4).

BlendSQL defaults to 5 keys per call: fewer calls, slightly more errors.
This bench sweeps batch size on the Super Hero database and asserts the
trade-off the paper describes: call count falls roughly linearly with
batch size while execution accuracy never improves.
"""

import pytest

from repro.eval.report import format_table
from repro.harness.runner import run_udf

BATCH_SIZES = (1, 5, 20)


@pytest.fixture(scope="module")
def sweep(swan, gold):
    return {
        size: run_udf(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"],
            gold=gold, batch_size=size,
        )
        for size in BATCH_SIZES
    }


def test_ablation_batch_size(benchmark, swan, gold, sweep, show):
    benchmark.pedantic(
        run_udf,
        args=(swan, "gpt-3.5-turbo", 0),
        kwargs={"databases": ["superhero"], "gold": gold, "batch_size": 5},
        rounds=1,
        iterations=1,
    )
    rows = [
        [size, run.usage.calls, run.usage.input_tokens,
         f"{run.overall_ex * 100:.1f}%"]
        for size, run in sweep.items()
    ]
    show(format_table(
        ["Batch size", "LLM calls", "Input tokens", "EX"],
        rows,
        title="Ablation: UDF batch size (Super Hero, GPT-3.5, 0-shot).",
    ))

    calls = [sweep[size].usage.calls for size in BATCH_SIZES]
    assert calls[0] > calls[1] > calls[2]

    # batching never helps accuracy (the paper blames it for errors)
    assert sweep[1].overall_ex >= sweep[5].overall_ex >= sweep[20].overall_ex - 1e-9
