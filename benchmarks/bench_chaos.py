"""Chaos bench: EX/F1 degradation vs fault intensity, with retries.

Sweeps both pipelines over increasing fault rates through the resilient
dispatch stack (FaultyClient -> RetryingClient -> cache) and emits
``BENCH_chaos.json``.  Two properties are asserted, mirroring the tier-1
chaos tests at bench scale:

- the rate-0 point of each pipeline equals the fault-free baseline
  (the resilience layer is invisible when nothing fails);
- degradation is graceful — even at the highest swept rate, the run
  completes, every attempt is accounted for, and EX stays within a
  sane band of the baseline because retries absorb the error faults.
"""

from repro.eval.report import format_records
from repro.harness.benchjson import write_chaos_json
from repro.harness.runner import run_hqdl, run_udf

#: One database keeps the sweep to a few seconds; the CLI (`python -m
#: repro.harness chaos`) runs the full-benchmark version.
DATABASES = ["superhero"]
FAULT_RATES = (0.0, 0.1, 0.3, 0.5)
MODEL = "gpt-3.5-turbo"


def test_chaos_degradation_sweep(swan, gold, show, tmp_path):
    target, payload = write_chaos_json(
        tmp_path / "BENCH_chaos.json",
        swan=swan,
        model_name=MODEL,
        fault_rates=FAULT_RATES,
        databases=DATABASES,
    )
    assert target.exists()
    points = payload["points"]
    show(format_records(
        [
            {
                "pipeline": p["pipeline"],
                "fault_rate": p["fault_rate"],
                "ex": p["ex"],
                "f1": p["f1"] if p["f1"] is not None else "-",
                "vs baseline": p["ex_recovered_vs_baseline"],
                "attempts": p["attempts"],
                "retries": p["retries"],
                "exhausted": p["exhausted"],
                "degraded rows": p["degraded_rows"],
            }
            for p in points
        ],
        title=f"EX/F1 vs fault rate ({MODEL}, {DATABASES[0]}, retries on).",
    ))

    # rate-0 anchors: chaos EX equals the plain runners' EX exactly
    udf_base = run_udf(swan, MODEL, 0, databases=DATABASES, gold=gold)
    hqdl_base = run_hqdl(swan, MODEL, 0, databases=DATABASES, gold=gold)
    by_key = {(p["pipeline"], p["fault_rate"]): p for p in points}
    assert by_key[("udf", 0.0)]["ex"] == round(udf_base.overall_ex, 4)
    assert by_key[("hqdl", 0.0)]["ex"] == round(hqdl_base.overall_ex, 4)
    assert by_key[("hqdl", 0.0)]["f1"] == round(hqdl_base.average_f1, 4)

    # every point's attempt ledger balances
    assert all(p["accounted"] for p in points)

    # degradation is monotone-ish, not catastrophic: retries keep the
    # mixed plan (20% corruption) above half the baseline even at 0.5
    for pipeline in ("udf", "hqdl"):
        worst = by_key[(pipeline, 0.5)]
        assert worst["ex_recovered_vs_baseline"] >= 0.5, worst

    # retries actually happened once faults were flowing
    assert by_key[("udf", 0.3)]["retries"] > 0
