"""Future work — semantic caching with query rewriting (Sections 4.3/5.5).

"A promising approach ... is incorporating query rewriting within Hybrid
Query UDFs to fully leverage all cached LLM-generated data."  This bench
runs the full European Football workload (the paper's own cost example
lives there) with and without the semantic cache and measures the saved
calls/tokens net of the equivalence-check overhead.
"""

import pytest

from repro.eval.report import format_table
from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.llm.usage import UsageMeter
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor
from repro.udf.semantic_cache import SemanticCache


def _run_workload(swan, semantic: bool):
    world = swan.world("european_football")
    meter = UsageMeter()
    model = MockChatModel(
        KnowledgeOracle(world), get_profile("gpt-4-turbo"), meter=meter
    )
    cache = SemanticCache() if semantic else None
    with build_curated_database(world) as db:
        executor = HybridQueryExecutor(db, model, world, semantic_cache=cache)
        for question in swan.questions_for("european_football"):
            executor.execute(question.blend_sql)
    return meter.total, cache


@pytest.fixture(scope="module")
def baseline(swan):
    return _run_workload(swan, semantic=False)


def test_future_semantic_cache(benchmark, swan, baseline, show):
    semantic_usage, cache = benchmark.pedantic(
        _run_workload, args=(swan, True), rounds=1, iterations=1
    )
    baseline_usage, _ = baseline

    show(format_table(
        ["Configuration", "LLM calls", "Input tokens", "Output tokens"],
        [
            ["prompt cache only (BlendSQL today)", baseline_usage.calls,
             baseline_usage.input_tokens, baseline_usage.output_tokens],
            ["+ semantic cache w/ rewriting", semantic_usage.calls,
             semantic_usage.input_tokens, semantic_usage.output_tokens],
        ],
        title="Future work: query rewriting over the European Football workload.",
    ))
    show(format_table(
        ["Exact hits", "Rewrites", "Rejected", "Keys reused"],
        [[cache.stats.exact_hits, cache.stats.rewrites,
          cache.stats.rejected_rewrites, cache.stats.keys_reused]],
        title="Semantic cache statistics.",
    ))

    # rewriting reuses generations and pays off net of equivalence checks
    assert cache.stats.keys_reused > 0
    assert cache.stats.rewrites > 0
    assert semantic_usage.calls < baseline_usage.calls
    assert semantic_usage.input_tokens < baseline_usage.input_tokens
    # rewriting never mixes attributes (rejections prove the check works)
    assert cache.stats.rejected_rewrites > 0
