"""Future work — materialized views over LLM generations (Section 4.2).

"Hybrid querying through UDFs offers more control for the database to
optimize the hybrid query, build materialized views..."  This bench runs
the Super Hero workload with a :class:`MaterializedViewStore` attached
and measures how many later queries are answered straight from persisted
view tables.
"""

import pytest

from repro.eval.report import format_table
from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.llm.usage import UsageMeter
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor
from repro.udf.views import MaterializedViewStore


def _run_workload(swan, with_views: bool):
    world = swan.world("superhero")
    meter = UsageMeter()
    model = MockChatModel(
        KnowledgeOracle(world), get_profile("gpt-3.5-turbo"), meter=meter
    )
    views = MaterializedViewStore() if with_views else None
    with build_curated_database(world) as db:
        executor = HybridQueryExecutor(db, model, world, views=views)
        for question in swan.questions_for("superhero"):
            executor.execute(question.blend_sql)
        view_tables = [t for t in db.table_names() if t.startswith("llm_view_")]
    return meter.total, views, view_tables


@pytest.fixture(scope="module")
def baseline(swan):
    return _run_workload(swan, with_views=False)


def test_future_materialized_views(benchmark, swan, baseline, show):
    usage, views, view_tables = benchmark.pedantic(
        _run_workload, args=(swan, True), rounds=1, iterations=1
    )
    baseline_usage, _, _ = baseline

    show(format_table(
        ["Configuration", "LLM calls", "Input tokens", "View tables", "View hits"],
        [
            ["temp tables only", baseline_usage.calls,
             baseline_usage.input_tokens, 0, 0],
            ["materialized views", usage.calls, usage.input_tokens,
             len(view_tables), views.stats.hits],
        ],
        title="Future work: materialized views over the Super Hero workload.",
    ))

    # full-scan generations persist as real tables ...
    assert views.stats.materializations > 0
    assert view_tables
    # ... and later queries on the same attribute read them for free
    assert views.stats.hits > 0
    assert usage.calls <= baseline_usage.calls
