"""Ablation — predicate pushdown (Section 4.3).

"BlendSQL optimizes queries by pushing down predicates to avoid
generating unnecessary data entries."  This bench runs the UDF pipeline
with pushdown on and off and asserts the token savings, with identical
execution accuracy (pushdown is a pure optimization).
"""

import pytest

from repro.eval.report import format_table
from repro.harness.runner import run_udf


@pytest.fixture(scope="module")
def runs(swan, gold):
    common = {"databases": ["formula_1"], "gold": gold}
    return {
        True: run_udf(swan, "perfect", 0, pushdown=True, **common),
        False: run_udf(swan, "perfect", 0, pushdown=False, **common),
    }


def test_ablation_pushdown(benchmark, swan, gold, runs, show):
    benchmark.pedantic(
        run_udf,
        args=(swan, "perfect", 0),
        kwargs={"databases": ["formula_1"], "gold": gold, "pushdown": True},
        rounds=1,
        iterations=1,
    )
    rows = [
        ["on" if enabled else "off", run.usage.calls, run.usage.input_tokens,
         run.usage.output_tokens, f"{run.overall_ex * 100:.1f}%"]
        for enabled, run in runs.items()
    ]
    show(format_table(
        ["Pushdown", "LLM calls", "Input tokens", "Output tokens", "EX"],
        rows,
        title="Ablation: predicate pushdown (Formula One, perfect model).",
    ))

    with_pd, without_pd = runs[True], runs[False]
    # pushdown cuts calls and tokens ...
    assert with_pd.usage.calls < without_pd.usage.calls
    assert with_pd.usage.input_tokens < without_pd.usage.input_tokens
    # ... without changing results (perfect model isolates the plumbing)
    assert with_pd.overall_ex == without_pd.overall_ex == 1.0
