"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works in offline environments whose setuptools lacks
the ``wheel`` package required by PEP 517 editable builds.
"""

from setuptools import setup

setup()
