"""Quickstart: load SWAN, run one question through both hybrid pipelines.

Run with:  python examples/quickstart.py
"""

from repro.core import HQDL
from repro.llm import KnowledgeOracle, MockChatModel, get_profile
from repro.sqlengine.results import results_match
from repro.swan import load_benchmark
from repro.swan.build import build_curated_database, build_original_database
from repro.udf import HybridQueryExecutor


def main() -> None:
    # 1. Load the benchmark: four worlds, 120 beyond-database questions.
    swan = load_benchmark()
    world = swan.world("superhero")
    question = swan.question("superhero_q01")
    print(f"Question: {question.text}\n")

    # 2. The ground truth comes from the gold SQL on the original database.
    with build_original_database(world) as original:
        expected = original.query(question.gold_sql)
    print(f"Gold answer ({len(expected)} rows):")
    print(expected.pretty(max_rows=5), "\n")

    # 3. Pick a model.  'gpt-4-turbo' simulates the paper's best model;
    #    'perfect' is the ideal upper bound.
    model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-4-turbo"))

    # 4. HQDL: expand the schema, let the LLM fill the missing table,
    #    then answer with plain SQL.
    hqdl = HQDL(world, model, shots=5)
    with hqdl.build_expanded_database() as expanded:
        hqdl_answer = hqdl.answer(expanded, question)
    print(f"HQDL answer ({len(hqdl_answer)} rows) — "
          f"correct: {results_match(expected, hqdl_answer, ordered=question.ordered)}")

    # 5. Hybrid Query UDFs: run the BlendSQL-dialect query directly.
    with build_curated_database(world) as curated:
        executor = HybridQueryExecutor(curated, model, world, shots=5)
        udf_answer = executor.execute(question.blend_sql)
    print(f"UDF  answer ({len(udf_answer)} rows) — "
          f"correct: {results_match(expected, udf_answer, ordered=question.ordered)}")

    # 6. Token accounting, as in the paper's Table 5.
    usage = model.meter.total
    print(f"\nLLM usage: {usage.calls} calls, "
          f"{usage.input_tokens} input / {usage.output_tokens} output tokens "
          f"(≈ ${usage.cost_usd('gpt-4-turbo'):.4f} at GPT-4 Turbo pricing)")


if __name__ == "__main__":
    main()
