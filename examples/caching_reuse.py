"""The Section 5.5 cost story, reproduced end to end.

Two European Football questions from the paper's own example:

1. "What is the height of the tallest player?"  — the hybrid UDF query
   generates heights for *all* players.
2. "Please list player names who are taller than 180cm." — the heights
   could be reused, but the prompt cache is keyed by exact prompt text
   and the second query phrases its question differently, so everything
   is regenerated.

HQDL materializes heights once and answers both questions for free.

Run with:  python examples/caching_reuse.py
"""

from repro.core import HQDL
from repro.llm import KnowledgeOracle, MockChatModel, PromptCache, get_profile
from repro.llm.usage import UsageMeter
from repro.swan import load_benchmark
from repro.swan.build import build_curated_database
from repro.udf import HybridQueryExecutor

TALLEST = (
    "SELECT MAX(CAST({{LLMMap('What is the height in centimeters of this "
    "football player?', 'player::player_name')}} AS INTEGER)) FROM player"
)
TALLER_THAN_180 = (
    "SELECT player_name FROM player WHERE "
    "CAST({{LLMMap('How tall is this football player in centimeters?', "
    "'player::player_name')}} AS INTEGER) > 180"
)


def main() -> None:
    swan = load_benchmark()
    world = swan.world("european_football")

    print("=== Hybrid Query UDFs (BlendSQL-style) ===")
    meter = UsageMeter()
    model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-4-turbo"),
                          meter=meter)
    cache = PromptCache()
    with build_curated_database(world) as db:
        executor = HybridQueryExecutor(db, model, world, cache=cache)
        tallest = executor.execute(TALLEST).scalar()
        after_first = meter.total
        print(f"Q1 tallest player: {tallest} cm "
              f"({after_first.calls} calls, {after_first.input_tokens} input tokens)")

        taller = executor.execute(TALLER_THAN_180)
        q2_calls = meter.total.calls - after_first.calls
        print(f"Q2 players > 180cm: {len(taller)} rows "
              f"({q2_calls} MORE calls — nothing reused!)")
        print(f"Cache: {cache.hits} hits / {cache.misses} misses — "
              "differently-phrased prompts cannot share generations\n")

    print("=== HQDL (schema expansion + materialization) ===")
    hqdl_meter = UsageMeter()
    hqdl_model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-4-turbo"),
                               meter=hqdl_meter)
    pipeline = HQDL(world, hqdl_model, shots=0)
    with pipeline.build_expanded_database() as db:
        generation_calls = hqdl_meter.total.calls
        tallest = db.query_scalar("SELECT MAX(height_cm) FROM player_info")
        taller = db.query(
            "SELECT p.player_name FROM player p "
            "JOIN player_info i ON p.player_name = i.player_name "
            "WHERE i.height_cm > 180"
        )
        print(f"Q1 tallest player: {tallest} cm")
        print(f"Q2 players > 180cm: {len(taller)} rows")
        print(f"Total LLM calls: {hqdl_meter.total.calls} "
              f"(all {generation_calls} during one-time materialization; "
              "both queries ran without any new calls)")


if __name__ == "__main__":
    main()
