"""Fully automated beyond-database answering (Section 6 future work).

No hand-written hybrid query: type a natural-language question, the
planner resolves the missing attribute, builds the BlendSQL-dialect
query, and the executor answers it against database + LLM.

Run with:  python examples/auto_planner.py
"""

from repro.auto import HybridQueryPlanner, evaluate_planner
from repro.auto.planner import PlanningError
from repro.llm import KnowledgeOracle, MockChatModel, get_profile
from repro.swan import load_benchmark
from repro.swan.build import build_curated_database
from repro.udf import HybridQueryExecutor

QUESTIONS = [
    ("superhero", "How many superheroes have blue eyes?"),
    ("superhero", "List the superhero names of heroes with green skin."),
    ("superhero", "What is the race of Thor?"),
    ("european_football", "List the names of players taller than 190 cm."),
    ("european_football", "What is the weight of Lionel Messi?"),
    ("formula_1", "How many drivers are French?"),
    ("superhero", "How many heroes are taller than 2 meters?"),  # answerable!
]


def main() -> None:
    swan = load_benchmark()
    for database, question in QUESTIONS:
        world = swan.world(database)
        planner = HybridQueryPlanner(world)
        print(f"[{database}] {question}")
        try:
            planned = planner.plan(question)
        except PlanningError as exc:
            print(f"  -> not planned: {exc}\n")
            continue
        print(f"  -> {planned.intent} over {planned.expansion} "
              f"({', '.join(planned.attributes)})")
        print(f"  -> {planned.blend_sql}")
        # the 'perfect' profile isolates planner quality from model error;
        # swap in 'gpt-4-turbo' to see both error sources compound
        model = MockChatModel(KnowledgeOracle(world), get_profile("perfect"))
        with build_curated_database(world) as db:
            executor = HybridQueryExecutor(db, model, world)
            result = executor.execute(planned.blend_sql)
        preview = ", ".join(str(row[0]) for row in result.rows[:6])
        suffix = ", ..." if len(result) > 6 else ""
        print(f"  -> answer: {preview}{suffix}\n")

    print("Evaluating the planner on all 120 SWAN questions (perfect model):")
    report = evaluate_planner(swan)
    print(f"  coverage: {report.planned}/{report.total} "
          f"({report.coverage * 100:.0f}%)")
    print(f"  planned accuracy: {report.correct}/{report.planned} "
          f"({report.planned_accuracy * 100:.0f}%)")


if __name__ == "__main__":
    main()
