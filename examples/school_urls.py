"""Free-form generation: school websites via HQDL schema expansion.

The California Schools world drops the website column; HQDL asks the LLM
to regenerate it (Section 3.3's free-form case — URLs are usually
predictable from the school name but not always), then ranks schools by
the retained SAT scores.  The example also shows the factuality metric
on the generated column.

Run with:  python examples/school_urls.py
"""

from repro.core import HQDL
from repro.eval.factuality import cell_f1
from repro.llm import KnowledgeOracle, MockChatModel, get_profile
from repro.swan import load_benchmark


def main() -> None:
    swan = load_benchmark()
    world = swan.world("california_schools")
    model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-4-turbo"))

    pipeline = HQDL(world, model, shots=3)
    generation = pipeline.generate_all()
    table = generation.tables["school_info"]
    print(f"Generated {len(table.rows)} school_info rows "
          f"({table.malformed} malformed and dropped)\n")

    with pipeline.build_expanded_database(generation) as db:
        result = db.query(
            "SELECT s.school_name, i.website, t.avg_scr_math "
            "FROM schools s "
            "JOIN school_info i ON s.school_name = i.school_name "
            "AND s.street_address = i.street_address "
            "JOIN satscores t ON s.cds_code = t.cds_code "
            "ORDER BY t.avg_scr_math DESC LIMIT 8"
        )
    print("Top schools by math score, with generated websites:")
    print(result.pretty())

    # factuality of the generated website column
    expansion = world.expansion("school_info")
    website = expansion.column("website")
    index = expansion.generated_column_names().index("website")
    scores = []
    for key, values in table.rows.items():
        generated = None if values is None else values[index]
        truth = world.truth_value("school_info", key, "website")
        scores.append(cell_f1(generated, truth, website))
    print(f"\nWebsite factuality (exact match): "
          f"{100 * sum(scores) / len(scores):.1f}% of {len(scores)} cells")


if __name__ == "__main__":
    main()
