"""The paper's Figure 1, live: Marvel heroes via a hybrid query.

The curated superhero database has no publisher information — the
closed-world query fails.  Treating the LLM as a table and joining it
with the database answers the question.

Run with:  python examples/marvel_heroes.py
"""

from repro.errors import ExecutionError
from repro.llm import KnowledgeOracle, MockChatModel, get_profile
from repro.swan import load_benchmark
from repro.swan.build import build_curated_database
from repro.udf import HybridQueryExecutor

HYBRID_SQL = """
SELECT superhero_name, full_name FROM superhero
WHERE {{LLMMap('Which comic book publisher published this superhero?',
               'superhero::superhero_name', 'superhero::full_name',
               options='publishers')}} = 'Marvel Comics'
ORDER BY superhero_name
""".strip()


def main() -> None:
    swan = load_benchmark()
    world = swan.world("superhero")

    with build_curated_database(world) as db:
        print("Closed-world attempt (database only):")
        try:
            db.query(
                "SELECT superhero_name FROM superhero "
                "WHERE publisher = 'Marvel Comics'"
            )
        except ExecutionError as exc:
            print(f"  FAILS — {exc}\n")

        print("Hybrid query over database + LLM:")
        print(f"  {HYBRID_SQL}\n")

        model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-4-turbo"))
        executor = HybridQueryExecutor(db, model, world, shots=5)
        result, report = executor.execute_with_report(HYBRID_SQL)

        truth_count = sum(
            1
            for entry in world.truth["superhero_info"].values()
            if entry["publisher_name"] == "Marvel Comics"
        )
        print(f"Found {len(result)} heroes (ground truth: {truth_count}):")
        for name, full_name in result.rows[:15]:
            print(f"  - {name} ({full_name})")
        if len(result) > 15:
            print(f"  ... and {len(result) - 15} more")
        print(f"\nLLM calls: {report.llm_calls}  "
              f"(batched {executor.batch_size} keys per call)")


if __name__ == "__main__":
    main()
