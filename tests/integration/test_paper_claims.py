"""One test per textual claim in the paper's evaluation narrative.

Each test quotes the claim it verifies (Section in parentheses).  These
complement the per-table benches: the benches pin numeric shapes, these
pin the *explanations* the paper gives for them.
"""

import pytest

from repro.harness.runner import GoldResults, run_hqdl, run_udf


@pytest.fixture(scope="module")
def gold(swan):
    return GoldResults(swan)


class TestSection51Metrics:
    def test_identical_results_is_the_bar(self, swan, gold):
        """(5.1) "EX measures the percentage of hybrid queries that produce
        identical results to the ground truth" — near-miss answers score 0."""
        run = run_hqdl(swan, "gpt-4-turbo", 5, databases=["superhero"],
                       gold=gold)
        for outcome in run.outcomes:
            assert outcome.correct in (True, False)  # no partial credit

    def test_f1_used_for_one_to_many(self):
        """(5.1) "Because of the one-to-many relationships ... we use the
        widely accepted F1 score"."""
        from repro.eval.factuality import cell_f1
        from repro.swan.base import KIND_MULTI, ExpansionColumn

        multi = ExpansionColumn("powers", KIND_MULTI, ("power",), "powers")
        partial = cell_f1("Flight", ("Flight", "Magic"), multi)
        assert 0.0 < partial < 1.0  # graded, not all-or-nothing


class TestSection53Analysis:
    def test_zero_shot_format_inconsistency(self, swan):
        """(5.3) "One major challenge in using zero-shot prompts ... LLMs
        sometimes return too few or too many fields and may occasionally
        return an empty string for a field"."""
        from repro.core.hqdl import HQDL
        from tests.conftest import make_model

        world = swan.world("superhero")
        pipeline = HQDL(world, make_model(world, "gpt-3.5-turbo"), shots=0)
        generation = pipeline.generate_all()
        assert generation.total_malformed() > 0

    def test_limit_clauses_mask_errors(self, swan, gold):
        """(5.3) "even when an LLM provides inaccurate answers for many
        schools, the top results may still appear correct, masking
        potential errors"."""
        from repro.eval.breakdown import analyze_run

        run = run_hqdl(swan, "gpt-3.5-turbo", 5, gold=gold)
        breakdown = analyze_run(swan, run)
        assert breakdown.limit_failure_rate() < breakdown.scan_failure_rate()

    def test_more_examples_more_accurate_data(self, swan, gold):
        """(5.3) "providing more examples in the input prompt increases the
        factuality of the generated output"."""
        zero = run_hqdl(swan, "gpt-4-turbo", 0, databases=["formula_1"],
                        gold=gold)
        five = run_hqdl(swan, "gpt-4-turbo", 5, databases=["formula_1"],
                        gold=gold)
        assert five.f1_by_db["formula_1"] > zero.f1_by_db["formula_1"]


class TestSection54UdfAnalysis:
    def test_full_row_beats_single_cell(self, swan, gold):
        """(5.4) "Predicting all column values may be more advantageous than
        predicting a single column value, as it mirrors a chain-of-thought
        process"."""
        hqdl = run_hqdl(swan, "gpt-3.5-turbo", 0, gold=gold)
        udf = run_udf(swan, "gpt-3.5-turbo", 0, gold=gold)
        assert hqdl.overall_ex > udf.overall_ex

    def test_batching_increases_error_potential(self, swan, gold):
        """(5.4) "Although batching reduces the number of LLM calls, it also
        increases the potential for errors"."""
        batched = run_udf(swan, "gpt-3.5-turbo", 0, databases=["superhero"],
                          gold=gold, batch_size=5)
        unbatched = run_udf(swan, "gpt-3.5-turbo", 0, databases=["superhero"],
                            gold=gold, batch_size=1)
        assert batched.usage.calls < unbatched.usage.calls
        assert unbatched.overall_ex >= batched.overall_ex


class TestSection55CostAnalysis:
    def test_udf_reuses_cache_poorly(self, swan, gold):
        """(5.5) "LLM-generated content is cached as a mapping from input
        prompts to LLM output answers, making it challenging for the system
        to efficiently reuse cached outputs"."""
        run = run_udf(swan, "gpt-3.5-turbo", 0, gold=gold)
        hit_rate = run.cache_hits / (run.cache_hits + run.cache_misses)
        # most prompts are unique (phrasing + batch composition); only
        # about half of lookups ever find a byte-identical prior prompt
        assert hit_rate < 0.6

    def test_hqdl_materialization_simplifies_reuse(self, swan, gold):
        """(5.5) "HQDL stores LLM-generated outputs directly as entities
        within relationships (schema expansion), simplifying reuse" — its
        call count is independent of the number of questions."""
        run = run_hqdl(swan, "gpt-3.5-turbo", 0, gold=gold)
        total_keys = sum(
            len(world.truth[e.name])
            for world in swan.worlds.values()
            for e in world.expansions
        )
        assert run.usage.calls == total_keys

    def test_udf_uses_more_tokens_overall(self, swan, gold):
        """(5.5) "Compared to HQDL, HQ UDFs uses [more] input tokens and
        [more] output tokens"."""
        hqdl = run_hqdl(swan, "gpt-3.5-turbo", 0, gold=gold)
        udf = run_udf(swan, "gpt-3.5-turbo", 0, gold=gold)
        assert udf.usage.input_tokens > hqdl.usage.input_tokens
        assert udf.usage.output_tokens > hqdl.usage.output_tokens
