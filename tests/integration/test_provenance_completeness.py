"""Provenance completeness properties on full SWAN runs.

Three invariants anchor the provenance subsystem (PR 5 tentpole):

1. **Completeness** — every non-NULL materialized cell has exactly one
   producing call-id, and that id resolves to a recorded call; the cell
   count equals the pipeline's own materialization count.  Holds across
   both pipelines, worker counts 1 and 8, and plan on/off.
2. **Invisibility** — running with the recorder enabled changes nothing:
   byte-identical outcomes and Usage versus the plain run.
3. **Attribution exhaustiveness** — every miss lands in exactly one
   class, so the classified misses sum to the total misses.
"""

import pytest

from repro.eval.attribution import (
    MISS_CLASSES,
    attribute_misses,
    attribution_counts,
)
from repro.harness.runner import (
    GoldResults,
    run_hqdl,
    run_hqdl_chaos,
    run_udf,
    run_udf_chaos,
)
from repro.obs import ProvenanceRecorder


@pytest.fixture(scope="module")
def gold(swan):
    return GoldResults(swan)


def _assert_unique_producers(cells):
    """Each (qid, table, key, column) slot was recorded exactly once."""
    seen = set()
    for cell in cells:
        slot = (cell.pipeline, cell.qid, cell.table, cell.key, cell.column)
        assert slot not in seen, f"cell recorded twice: {slot}"
        seen.add(slot)


def _assert_resolvable(provenance, cells):
    """Every non-NULL cell names exactly one call the recorder knows."""
    for cell in cells:
        if cell.null:
            continue
        assert cell.call_id, f"non-NULL cell without a producer: {cell}"
        call = provenance.call(cell.call_id)
        assert call is not None, f"dangling call-id {cell.call_id}"
        assert call.dispatches >= 1


def _outcome_key(outcome):
    return (outcome.qid, outcome.correct, outcome.actual_rows, outcome.error)


class TestUDFCompleteness:
    @pytest.mark.parametrize("workers", [1, 8])
    @pytest.mark.parametrize("plan", [None, "prompt"])
    def test_full_swan_every_cell_accounted(self, swan, gold, workers, plan):
        prov = ProvenanceRecorder()
        run = run_udf(
            swan, "gpt-3.5-turbo", 0, gold=gold, workers=workers,
            plan=plan, provenance=prov,
        )
        cells = prov.cells()
        assert cells, "a full run must record cells"
        non_null = [cell for cell in cells if not cell.null]
        # the recorder and the pipeline agree on what materialized
        assert len(non_null) == run.keys_generated
        _assert_unique_producers(cells)
        _assert_resolvable(prov, cells)
        # no faults were injected, so nothing may be flagged degraded
        assert all(not cell.degraded for cell in cells)
        # planned runs mark planner-issued calls as planned
        if plan == "prompt":
            assert any(call.planned for call in prov.calls())

    def test_qa_calls_recorded(self, swan, gold):
        """LLMQA bypasses the dispatcher but still lands in provenance."""
        prov = ProvenanceRecorder()
        run_udf(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"],
            gold=gold, provenance=prov,
        )
        assert any(call.label == "udf:qa" for call in prov.calls())


class TestHQDLCompleteness:
    @pytest.mark.parametrize("workers", [1, 8])
    def test_full_swan_every_cell_accounted(self, swan, gold, workers):
        prov = ProvenanceRecorder()
        run = run_hqdl(
            swan, "gpt-3.5-turbo", 0, gold=gold, workers=workers,
            provenance=prov,
        )
        cells = prov.cells()
        non_null = [cell for cell in cells if not cell.null]
        generated = sum(
            table.generated_cells()
            for result in run.generations.values()
            for table in result.tables.values()
        )
        assert len(non_null) == generated
        # HQDL generates once per database, before any question runs
        assert all(cell.qid == "" for cell in cells)
        _assert_unique_producers(cells)
        _assert_resolvable(prov, cells)
        assert all(not cell.degraded for cell in cells)


class TestInvisibility:
    def test_udf_run_identical_with_recorder_on(self, swan, gold):
        plain = run_udf(swan, "gpt-3.5-turbo", 0, gold=gold, workers=4)
        observed = run_udf(
            swan, "gpt-3.5-turbo", 0, gold=gold, workers=4,
            provenance=ProvenanceRecorder(),
        )
        assert plain.usage == observed.usage
        assert plain.ex_by_db == observed.ex_by_db
        assert list(map(_outcome_key, plain.outcomes)) == list(
            map(_outcome_key, observed.outcomes)
        )

    def test_hqdl_run_identical_with_recorder_on(self, swan, gold):
        plain = run_hqdl(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold
        )
        observed = run_hqdl(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold,
            provenance=ProvenanceRecorder(),
        )
        assert plain.usage == observed.usage
        assert plain.f1_by_db == observed.f1_by_db
        assert list(map(_outcome_key, plain.outcomes)) == list(
            map(_outcome_key, observed.outcomes)
        )


class TestDegradedFlagging:
    def test_udf_chaos_degraded_cells_flagged(self, swan, gold):
        prov = ProvenanceRecorder()
        chaos = run_udf_chaos(
            swan, "gpt-3.5-turbo", 0, fault_rate=0.4, retries=False,
            databases=["superhero"], gold=gold, provenance=prov,
        )
        degraded = [cell for cell in prov.cells() if cell.degraded]
        assert chaos.resilience.as_dict()["degraded_rows"] > 0
        assert degraded, "failed batches must flag their cells degraded"
        # degraded implies NULL; the producing call either stayed failed
        # or a later dispatch of the same prompt (another question, the
        # retry layer) succeeded and was served from cache
        for cell in degraded:
            assert cell.null
            call = prov.call(cell.call_id)
            assert call is not None
            assert call.failed or call.paid_calls > 0

    def test_hqdl_chaos_degraded_cells_flagged(self, swan, gold):
        prov = ProvenanceRecorder()
        chaos = run_hqdl_chaos(
            swan, "gpt-3.5-turbo", 0, fault_rate=0.4, retries=False,
            databases=["superhero"], gold=gold, provenance=prov,
        )
        degraded = [cell for cell in prov.cells() if cell.degraded]
        assert chaos.resilience.as_dict()["degraded_rows"] > 0
        assert degraded
        assert all(cell.null for cell in degraded)


class TestAttributionExhaustiveness:
    @pytest.mark.parametrize("pipeline", ["udf", "hqdl"])
    def test_every_miss_classified_exactly_once(self, swan, gold, pipeline):
        prov = ProvenanceRecorder()
        runner = run_udf if pipeline == "udf" else run_hqdl
        run = runner(swan, "gpt-3.5-turbo", 0, gold=gold, provenance=prov)
        questions = {
            question.qid: question
            for name in swan.database_names()
            for question in swan.questions_for(name)
        }
        attributions = attribute_misses(
            prov, run.outcomes, questions, pipeline=pipeline
        )
        misses = sum(1 for outcome in run.outcomes if not outcome.correct)
        assert misses > 0  # gpt-3.5-turbo is imperfect by construction
        assert len(attributions) == misses
        counts = attribution_counts(attributions)
        assert sum(counts.values()) == misses
        assert set(counts) == set(MISS_CLASSES)
        for attribution in attributions:
            assert attribution.miss_class in MISS_CLASSES
