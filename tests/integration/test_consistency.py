"""The benchmark's central integrity property.

For every one of the 120 questions, the three queries must agree exactly
when the LLM is perfect: gold on the original database, HQDL's hybrid SQL
on the expanded database, and the BlendSQL-dialect query through the UDF
executor.  Any EX loss in the experiments is then attributable to model
errors alone — never to inconsistent hand-written queries.
"""

import pytest

from repro.core.hqdl import HQDL
from repro.sqlengine.results import results_match
from repro.swan.benchmark import DATABASE_ORDER
from repro.swan.build import build_curated_database, build_original_database
from repro.udf.executor import HybridQueryExecutor

from tests.conftest import make_model


@pytest.fixture(scope="module", params=DATABASE_ORDER)
def database_fixture(request, swan):
    name = request.param
    world = swan.world(name)
    orig = build_original_database(world)
    hqdl = HQDL(world, make_model(world), shots=0)
    expanded = hqdl.build_expanded_database()
    curated = build_curated_database(world)
    executor = HybridQueryExecutor(curated, make_model(world), world)
    yield name, world, orig, hqdl, expanded, executor
    orig.close()
    expanded.close()
    curated.close()


class TestPerfectModelConsistency:
    def test_hqdl_matches_gold(self, swan, database_fixture):
        name, world, orig, hqdl, expanded, _ = database_fixture
        for question in swan.questions_for(name):
            expected = orig.query(question.gold_sql)
            actual = hqdl.answer(expanded, question)
            assert results_match(expected, actual, ordered=question.ordered), (
                question.qid
            )

    def test_udf_matches_gold(self, swan, database_fixture):
        name, world, orig, _, _, executor = database_fixture
        for question in swan.questions_for(name):
            expected = orig.query(question.gold_sql)
            actual = executor.execute(question.blend_sql)
            assert results_match(expected, actual, ordered=question.ordered), (
                question.qid
            )

    def test_gold_results_non_trivial(self, swan, database_fixture):
        """Most questions must have non-empty answers (no vacuous passes)."""
        name, world, orig, _, _, _ = database_fixture
        empty = sum(
            1
            for question in swan.questions_for(name)
            if orig.query(question.gold_sql).is_empty()
        )
        assert empty == 0, f"{empty} empty gold results in {name}"
