"""End-to-end behavioural shapes on real (imperfect) model profiles.

These assert the qualitative claims of the paper's evaluation on a single
database each, keeping runtime low; the benchmark suite reruns the full
grids.
"""

import pytest

from repro.harness.runner import GoldResults, run_hqdl, run_udf


@pytest.fixture(scope="module")
def gold(swan):
    return GoldResults(swan)


class TestShotScaling:
    def test_hqdl_improves_with_shots(self, swan, gold):
        """Table 2's headline: demonstrations raise execution accuracy."""
        zero = run_hqdl(swan, "gpt-4-turbo", 0, databases=["formula_1"], gold=gold)
        five = run_hqdl(swan, "gpt-4-turbo", 5, databases=["formula_1"], gold=gold)
        assert five.overall_ex > zero.overall_ex

    def test_factuality_improves_with_shots(self, swan, gold):
        zero = run_hqdl(swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold)
        five = run_hqdl(swan, "gpt-3.5-turbo", 5, databases=["superhero"], gold=gold)
        assert five.f1_by_db["superhero"] > zero.f1_by_db["superhero"]


class TestModelOrdering:
    def test_gpt4_more_factual_than_gpt35(self, swan, gold):
        """Table 4: GPT-4 Turbo consistently generates more factual data."""
        for shots in (0, 5):
            weak = run_hqdl(swan, "gpt-3.5-turbo", shots,
                            databases=["superhero"], gold=gold)
            strong = run_hqdl(swan, "gpt-4-turbo", shots,
                              databases=["superhero"], gold=gold)
            assert strong.f1_by_db["superhero"] >= weak.f1_by_db["superhero"]


class TestMethodOrdering:
    def test_hqdl_beats_udf_on_execution_accuracy(self, swan, gold):
        """Section 5.4: full-row generation beats single-cell generation."""
        hqdl = run_hqdl(swan, "gpt-3.5-turbo", 0, gold=gold)
        udf = run_udf(swan, "gpt-3.5-turbo", 0, gold=gold)
        assert hqdl.overall_ex > udf.overall_ex

    def test_udf_uses_more_tokens_than_hqdl(self, swan, gold):
        """Section 5.5: limited cache reuse makes HQ UDFs the costly path."""
        hqdl = run_hqdl(swan, "gpt-3.5-turbo", 0, gold=gold)
        udf = run_udf(swan, "gpt-3.5-turbo", 0, gold=gold)
        assert udf.usage.output_tokens > hqdl.usage.output_tokens
        assert udf.usage.calls > hqdl.usage.calls


class TestDatabaseDifficulty:
    def test_california_easiest_football_hardest(self, swan, gold):
        """Table 2's per-database ordering at 5 shots."""
        run = run_hqdl(swan, "gpt-4-turbo", 5, gold=gold)
        ex = run.ex_by_db
        assert ex["california_schools"] == max(ex.values())
        assert ex["european_football"] == min(ex.values())


class TestDeterminism:
    def test_full_run_reproducible(self, swan, gold):
        first = run_hqdl(swan, "gpt-3.5-turbo", 1, databases=["superhero"], gold=gold)
        second = run_hqdl(swan, "gpt-3.5-turbo", 1, databases=["superhero"], gold=gold)
        assert first.ex_by_db == second.ex_by_db
        assert first.f1_by_db == second.f1_by_db
        assert first.usage == second.usage
