"""Tests for the vector index and row-context retrieval."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval import RowContextRetriever, VectorIndex
from repro.retrieval.embedding import cosine_similarity, embed


class TestVectorIndex:
    def test_add_and_document(self):
        index = VectorIndex()
        doc_id = index.add("hello world")
        assert index.document(doc_id) == "hello world"
        assert len(index) == 1

    def test_search_ranks_by_similarity(self):
        index = VectorIndex()
        index.add("the batman fights crime in gotham")
        index.add("football players run on grass")
        hits = index.search("batman gotham", k=2)
        assert hits[0].text.startswith("the batman")
        assert hits[0].score > hits[-1].score if len(hits) > 1 else True

    def test_zero_similarity_excluded(self):
        index = VectorIndex()
        index.add("alpha beta")
        assert index.search("gamma delta", k=5) == []

    def test_k_zero_and_empty(self):
        index = VectorIndex()
        assert index.search("anything", k=0) == []
        assert VectorIndex().search("anything") == []

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.text(alphabet="abc def", min_size=1, max_size=10),
                    min_size=1, max_size=10))
    def test_top_hit_is_document_itself(self, documents):
        index = VectorIndex()
        for document in documents:
            index.add(document)
        for document in documents:
            if not embed(document):
                continue
            hits = index.search(document, k=1)
            assert hits
            assert cosine_similarity(
                embed(hits[0].text), embed(document)
            ) >= 1.0 - 1e-9


class TestRowContextRetriever:
    @pytest.fixture(scope="class")
    def retriever(self, superhero_world):
        return RowContextRetriever(superhero_world)

    def test_indexes_all_curated_rows(self, retriever, superhero_world):
        expected = sum(len(rows) for rows in superhero_world.curated_rows.values())
        assert len(retriever.index) == expected

    def test_related_rows_find_the_hero(self, retriever):
        rows = retriever.related_rows(("Batman", "Bruce Wayne"), k=3)
        assert rows
        assert any("Batman" in row for row in rows)

    def test_rows_render_table_and_columns(self, retriever):
        rows = retriever.related_rows(("Superman", "Clark Kent"), k=1)
        assert rows[0].startswith("superhero:")
        assert "superhero_name=Superman" in rows[0]

    def test_context_provider(self, retriever):
        provider = retriever.context_provider(2)
        assert provider is not None
        assert len(provider(("Batman", "Bruce Wayne"))) == 2
        assert retriever.context_provider(0) is None

    def test_long_cells_clipped(self, superhero_world):
        retriever = RowContextRetriever(superhero_world, max_cell_chars=10)
        rows = retriever.related_rows(("Batman", "Bruce Wayne"), k=1)
        for fragment in rows[0].split(" | "):
            value = fragment.split("=", 1)[-1]
            assert len(value) <= 10


class TestHQDLContextEffect:
    def test_context_improves_factuality_and_costs_tokens(self, superhero_world):
        from repro.core import HQDL
        from repro.eval.factuality import database_factuality
        from repro.llm.usage import UsageMeter
        from tests.conftest import make_model

        results = {}
        for context_rows in (0, 3):
            model = make_model(superhero_world, "gpt-3.5-turbo")
            pipeline = HQDL(superhero_world, model, shots=0,
                            context_rows=context_rows)
            generation = pipeline.generate_all()
            results[context_rows] = (
                database_factuality(superhero_world, generation),
                model.meter.total.input_tokens,
            )
        assert results[3][0] > results[0][0]  # grounding helps recall
        assert results[3][1] > results[0][1]  # and costs input tokens

    def test_perfect_model_unaffected_by_context(self, superhero_world):
        from repro.core import HQDL
        from repro.eval.factuality import database_factuality
        from tests.conftest import make_model

        pipeline = HQDL(superhero_world, make_model(superhero_world),
                        shots=0, context_rows=2)
        generation = pipeline.generate_all()
        assert database_factuality(superhero_world, generation) == 1.0
