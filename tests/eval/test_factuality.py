"""Tests for the data-factuality F1 metric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hqdl import GenerationResult, TableGeneration
from repro.eval.factuality import (
    _set_f1,
    cell_f1,
    database_factuality,
    table_factuality,
)
from repro.swan.base import (
    KIND_FREEFORM,
    KIND_MULTI,
    KIND_NUMERIC,
    KIND_SELECTION,
    ExpansionColumn,
)

SELECTION = ExpansionColumn("c", KIND_SELECTION, ("c",), "some_list")
FREEFORM = ExpansionColumn("f", KIND_FREEFORM, ("f",))
NUMERIC = ExpansionColumn("n", KIND_NUMERIC, ("n",))
MULTI = ExpansionColumn("m", KIND_MULTI, ("m",), "some_list")


class TestCellF1:
    def test_exact_match(self):
        assert cell_f1("DC Comics", "DC Comics", SELECTION) == 1.0

    def test_mismatch(self):
        assert cell_f1("Marvel Comics", "DC Comics", SELECTION) == 0.0

    def test_missing_cell_scores_zero(self):
        assert cell_f1(None, "DC Comics", SELECTION) == 0.0

    def test_whitespace_normalised(self):
        assert cell_f1("DC  Comics", "DC Comics", FREEFORM) == 1.0

    def test_numeric_string_equivalence(self):
        assert cell_f1("180", 180, NUMERIC) == 1.0
        assert cell_f1("180.0", 180, NUMERIC) == 1.0
        assert cell_f1("181", 180, NUMERIC) == 0.0

    def test_multi_perfect(self):
        assert cell_f1("Flight, Magic", ("Flight", "Magic"), MULTI) == 1.0

    def test_multi_partial(self):
        score = cell_f1("Flight", ("Flight", "Magic"), MULTI)
        # precision 1, recall 0.5 -> F1 = 2/3
        assert score == pytest.approx(2 / 3)

    def test_multi_order_insensitive(self):
        assert cell_f1("Magic, Flight", ("Flight", "Magic"), MULTI) == 1.0

    def test_multi_empty_both(self):
        assert cell_f1("", (), MULTI) == 1.0

    def test_multi_hallucinated_extra(self):
        score = cell_f1("Flight, Magic, Stealth", ("Flight", "Magic"), MULTI)
        assert 0.0 < score < 1.0


class TestSetF1Properties:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.sampled_from("abcdef"), max_size=6))
    def test_identical_sets_score_one(self, items):
        assert _set_f1(items, items) == 1.0

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(st.sampled_from("abc"), max_size=4),
        st.lists(st.sampled_from("def"), min_size=1, max_size=4),
    )
    def test_disjoint_sets_score_zero(self, left, right):
        if not left:
            return  # empty vs non-empty is covered elsewhere
        assert _set_f1(left, right) == 0.0

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(st.sampled_from("abcdef"), max_size=6),
        st.lists(st.sampled_from("abcdef"), max_size=6),
    )
    def test_symmetric_and_bounded(self, left, right):
        score = _set_f1(left, right)
        assert 0.0 <= score <= 1.0
        assert score == _set_f1(right, left)


class TestTableFactuality:
    def test_counts_all_expected_cells(self, superhero_world):
        generation = TableGeneration(expansion_name="superhero_info")
        # nothing generated: every cell scores zero but all are counted
        total, cells = table_factuality(superhero_world, generation)
        expansion = superhero_world.expansion("superhero_info")
        assert total == 0.0
        assert cells == len(superhero_world.truth["superhero_info"]) * len(
            expansion.columns
        )

    def test_perfect_generation_scores_one(self, superhero_world):
        from repro.core.hqdl import HQDL
        from tests.conftest import make_model

        pipeline = HQDL(superhero_world, make_model(superhero_world), shots=0)
        generation = pipeline.generate_all()
        score = database_factuality(superhero_world, generation)
        assert score == 1.0

    def test_empty_generation_result(self, superhero_world):
        result = GenerationResult(database="superhero", shots=0)
        assert database_factuality(superhero_world, result) == 0.0
