"""Tests for miss attribution (classification precedence, exhaustiveness)."""

import pytest

from repro.eval.attribution import (
    MISS_CLASSES,
    Attribution,
    attribute_misses,
    attribution_counts,
    cells_for_question,
    classify_miss,
)
from repro.eval.execution import ExecutionOutcome
from repro.obs.provenance import (
    TIER_DISK,
    TIER_FRESH,
    TIER_MAPPING_STORE,
    TIER_MEMORY,
    CellProvenance,
    ProvenanceRecorder,
)
from repro.swan.base import Question


def _question(qid="db_q01", database="db", expansion_columns=()):
    return Question(
        qid=qid, database=database, text="t",
        gold_sql="SELECT 1", hqdl_sql="SELECT 1", blend_sql="SELECT 1",
        expansion_columns=tuple(expansion_columns),
    )


def _outcome(qid="db_q01", correct=False, error=""):
    return ExecutionOutcome(
        qid=qid, database="db", correct=correct,
        expected_rows=1, actual_rows=0, error=error,
    )


def _cell(column="v", tier=TIER_FRESH, null=False, degraded=False, qid="db_q01"):
    return CellProvenance(
        pipeline="udf", database="db", qid=qid, table="t", key=("k",),
        column=column, call_id="c0", tier=tier, null=null, degraded=degraded,
    )


class TestClassifyMiss:
    def test_sql_error_wins(self):
        cells = [_cell(degraded=True), _cell(null=True)]
        attr = classify_miss(
            _outcome(error="no such column: x\nmore"), cells, pipeline="udf"
        )
        assert attr.miss_class == "sql-mismatch"
        assert attr.detail == "no such column: x"

    def test_degraded_beats_format_drift(self):
        cells = [_cell(null=True), _cell(null=True, degraded=True)]
        attr = classify_miss(_outcome(), cells, pipeline="udf")
        assert attr.miss_class == "degraded-batch"
        assert "t[k]" in attr.detail

    def test_format_drift_beats_stale_cache(self):
        cells = [_cell(tier=TIER_DISK), _cell(null=True)]
        attr = classify_miss(_outcome(), cells, pipeline="udf")
        assert attr.miss_class == "format-drift"

    def test_stale_cache_tiers(self):
        for tier in (TIER_DISK, TIER_MAPPING_STORE):
            attr = classify_miss(_outcome(), [_cell(tier=tier)], pipeline="udf")
            assert attr.miss_class == "stale-cache"
        for tier in (TIER_FRESH, TIER_MEMORY):
            attr = classify_miss(_outcome(), [_cell(tier=tier)], pipeline="udf")
            assert attr.miss_class == "oracle-knowledge"

    def test_oracle_knowledge_residual(self):
        attr = classify_miss(_outcome(), [], pipeline="hqdl")
        assert attr.miss_class == "oracle-knowledge"
        assert attr.detail == ""

    def test_every_class_reachable_and_valid(self):
        produced = {
            classify_miss(_outcome(error="boom"), [], pipeline="udf").miss_class,
            classify_miss(_outcome(), [_cell(degraded=True)], pipeline="udf").miss_class,
            classify_miss(_outcome(), [_cell(null=True)], pipeline="udf").miss_class,
            classify_miss(_outcome(), [_cell(tier=TIER_DISK)], pipeline="udf").miss_class,
            classify_miss(_outcome(), [_cell()], pipeline="udf").miss_class,
        }
        assert produced == set(MISS_CLASSES)


class TestCellsForQuestion:
    def test_direct_qid_cells_preferred(self):
        prov = ProvenanceRecorder()
        with prov.context(pipeline="udf", database="db", qid="db_q01"):
            prov.record_cell("t", (1,), "v", "c0")
        with prov.context(pipeline="udf", database="db", qid=""):
            prov.record_cell("t", (2,), "v", "c0")
        cells = cells_for_question(prov, _question(), "udf")
        assert len(cells) == 1
        assert cells[0].qid == "db_q01"

    def test_hqdl_shared_cells_filtered_by_expansion_columns(self):
        prov = ProvenanceRecorder()
        with prov.context(pipeline="hqdl", database="db", qid=""):
            prov.record_cell("exp", (1,), "publisher", "c0")
            prov.record_cell("exp", (1,), "alignment", "c0")
        question = _question(expansion_columns=("publisher",))
        cells = cells_for_question(prov, question, "hqdl")
        assert [cell.column for cell in cells] == ["publisher"]

    def test_no_expansion_columns_takes_all_shared(self):
        prov = ProvenanceRecorder()
        with prov.context(pipeline="hqdl", database="db", qid=""):
            prov.record_cell("exp", (1,), "a", "c0")
            prov.record_cell("exp", (1,), "b", "c0")
        cells = cells_for_question(prov, _question(), "hqdl")
        assert len(cells) == 2


class TestAttributeMisses:
    def test_correct_outcomes_skipped(self):
        prov = ProvenanceRecorder()
        outcomes = [_outcome(correct=True), _outcome(qid="db_q02")]
        questions = {
            "db_q01": _question(), "db_q02": _question(qid="db_q02"),
        }
        attrs = attribute_misses(prov, outcomes, questions, pipeline="udf")
        assert len(attrs) == 1
        assert attrs[0].qid == "db_q02"

    def test_exhaustive_over_misses(self):
        prov = ProvenanceRecorder()
        outcomes = [
            _outcome(qid="db_q01", error="boom"),
            _outcome(qid="db_q02"),
            _outcome(qid="db_q03", correct=True),
        ]
        questions = {o.qid: _question(qid=o.qid) for o in outcomes}
        attrs = attribute_misses(prov, outcomes, questions, pipeline="udf")
        counts = attribution_counts(attrs)
        misses = sum(1 for o in outcomes if not o.correct)
        assert sum(counts.values()) == misses
        assert set(counts) == set(MISS_CLASSES)

    def test_unknown_question_still_classified(self):
        prov = ProvenanceRecorder()
        attrs = attribute_misses(
            prov, [_outcome(qid="db_q99")], {}, pipeline="udf"
        )
        assert attrs[0].miss_class == "oracle-knowledge"

    def test_as_record(self):
        attr = Attribution(
            qid="q", database="db", pipeline="udf",
            miss_class="format-drift", detail="t[k].v",
        )
        record = attr.as_record()
        assert record["class"] == "format-drift"
        assert record["qid"] == "q"


class TestAttributionCounts:
    def test_all_classes_present_with_zeros(self):
        counts = attribution_counts([])
        assert set(counts) == set(MISS_CLASSES)
        assert all(v == 0 for v in counts.values())
