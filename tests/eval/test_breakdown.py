"""Tests for the error-breakdown analysis."""

import pytest

from repro.eval.breakdown import analyze_run
from repro.harness.runner import GoldResults, run_hqdl


@pytest.fixture(scope="module")
def run_and_breakdown(swan):
    gold = GoldResults(swan)
    run = run_hqdl(swan, "gpt-3.5-turbo", 0, gold=gold)
    return run, analyze_run(swan, run)


class TestAnalyzeRun:
    def test_totals_match_run(self, run_and_breakdown):
        run, breakdown = run_and_breakdown
        assert breakdown.total == len(run.outcomes) == 120
        assert breakdown.failures == sum(
            1 for outcome in run.outcomes if not outcome.correct
        )
        assert breakdown.failure_rate() == pytest.approx(1 - run.overall_ex)

    def test_per_database_totals(self, run_and_breakdown):
        _, breakdown = run_and_breakdown
        assert set(breakdown.totals_by_database.values()) == {30}

    def test_limit_masking_effect(self, run_and_breakdown):
        """The Section 5.3 observation: LIMIT questions fail less often."""
        _, breakdown = run_and_breakdown
        assert breakdown.limit_total > 10
        assert breakdown.limit_failure_rate() < breakdown.scan_failure_rate()

    def test_kind_totals_cover_failures(self, run_and_breakdown):
        _, breakdown = run_and_breakdown
        for kind, failures in breakdown.by_kind.items():
            assert failures <= breakdown.totals_by_kind[kind]

    def test_render_includes_key_lines(self, run_and_breakdown):
        _, breakdown = run_and_breakdown
        text = breakdown.render()
        assert "Error breakdown: gpt-3.5-turbo, 0-shot" in text
        assert "masking effect" in text
        assert "wrong number of rows" in text

    def test_perfect_run_has_no_failures(self, swan):
        gold = GoldResults(swan)
        run = run_hqdl(swan, "perfect", 0, databases=["superhero"], gold=gold)
        breakdown = analyze_run(swan, run)
        assert breakdown.failures == 0
        assert breakdown.qids == []
