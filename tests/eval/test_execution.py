"""Tests for the EX metric plumbing."""

from repro.eval.execution import (
    evaluate_question,
    execution_accuracy,
    failed_outcome,
)
from repro.sqlengine.results import ResultSet
from repro.swan.base import Question


def make_question(ordered=False):
    return Question(
        qid="demo_q01",
        database="demo",
        text="?",
        gold_sql="SELECT 1",
        hqdl_sql="SELECT 1",
        blend_sql="SELECT {{LLMQA('q')}}",
        ordered=ordered,
    )


def rs(rows):
    return ResultSet(columns=["c"], rows=[tuple(r) for r in rows])


class TestEvaluateQuestion:
    def test_correct(self):
        outcome = evaluate_question(make_question(), rs([(1,)]), rs([(1,)]))
        assert outcome.correct
        assert outcome.expected_rows == outcome.actual_rows == 1

    def test_incorrect(self):
        outcome = evaluate_question(make_question(), rs([(1,)]), rs([(2,)]))
        assert not outcome.correct

    def test_ordered_respects_flag(self):
        expected, actual = rs([(1,), (2,)]), rs([(2,), (1,)])
        assert evaluate_question(make_question(False), expected, actual).correct
        assert not evaluate_question(make_question(True), expected, actual).correct

    def test_failed_outcome(self):
        outcome = failed_outcome(make_question(), rs([(1,)]), "boom")
        assert not outcome.correct
        assert outcome.error == "boom"
        assert outcome.actual_rows == 0


class TestAccuracy:
    def test_empty_is_zero(self):
        assert execution_accuracy([]) == 0.0

    def test_fraction(self):
        outcomes = [
            evaluate_question(make_question(), rs([(1,)]), rs([(1,)])),
            evaluate_question(make_question(), rs([(1,)]), rs([(2,)])),
        ]
        assert execution_accuracy(outcomes) == 0.5
