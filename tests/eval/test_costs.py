"""Tests for the cost/latency/throughput analysis."""

import pytest

from repro.eval.costs import CostReport, estimate_costs
from repro.llm.batching import LatencyModel
from repro.llm.usage import Usage


FLAT_LATENCY = LatencyModel(base_seconds=1.0, per_input_token=0.0,
                            per_output_token=0.0)


class TestEstimateCosts:
    def test_dollars_match_pricing(self):
        usage = Usage(input_tokens=1_000_000, output_tokens=0, calls=10)
        report = estimate_costs(usage, "gpt-3.5-turbo")
        assert report.dollars == pytest.approx(3.0)

    def test_even_call_split(self):
        usage = Usage(input_tokens=100, output_tokens=50, calls=10)
        report = estimate_costs(usage, "gpt-3.5-turbo",
                                latency_model=FLAT_LATENCY, workers=5)
        assert report.sequential_latency_s == pytest.approx(10.0)
        assert report.parallel_latency_s == pytest.approx(2.0)

    def test_explicit_call_sizes_override(self):
        usage = Usage(input_tokens=100, output_tokens=100, calls=2)
        report = estimate_costs(
            usage, "gpt-3.5-turbo",
            call_sizes=[(100, 0), (0, 100), (0, 0)],
            latency_model=FLAT_LATENCY,
        )
        assert report.sequential_latency_s == pytest.approx(3.0)

    def test_per_question_and_throughput(self):
        usage = Usage(input_tokens=1000, output_tokens=100, calls=4)
        report = estimate_costs(usage, "gpt-4-turbo", questions=10,
                                latency_model=FLAT_LATENCY, workers=4)
        assert report.dollars_per_question == pytest.approx(report.dollars / 10)
        assert report.throughput_qps == pytest.approx(10 / report.parallel_latency_s)

    def test_zero_usage(self):
        report = estimate_costs(Usage(), "gpt-3.5-turbo")
        assert report.dollars == 0.0
        assert report.sequential_latency_s == 0.0
        assert report.throughput_qps == 0.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            estimate_costs(Usage(), "gpt-3.5-turbo", workers=0)

    def test_summary_renders(self):
        usage = Usage(input_tokens=1000, output_tokens=100, calls=4)
        text = estimate_costs(usage, "gpt-3.5-turbo", questions=2).summary()
        assert "cost: $" in text
        assert "questions/s" in text

    def test_parallel_never_slower_than_sequential(self):
        usage = Usage(input_tokens=10_000, output_tokens=2_000, calls=20)
        report = estimate_costs(usage, "gpt-4-turbo", workers=8)
        assert report.parallel_latency_s <= report.sequential_latency_s


class TestCostReportIsFrozen:
    def test_immutable(self):
        report = estimate_costs(Usage(), "gpt-3.5-turbo")
        with pytest.raises(AttributeError):
            report.dollars = 99.0  # type: ignore[misc]
        assert isinstance(report, CostReport)
