"""Tests for table formatting."""

from repro.eval.report import format_records, format_table, percent


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "n"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or "-" in line for line in lines[:1])
        assert "longer" in lines[3]

    def test_title(self):
        text = format_table(["a"], [[1]], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_floats_formatted(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.1" in text

    def test_records(self):
        text = format_records([{"x": 1, "y": 2}, {"x": 3, "y": 4}])
        assert "x" in text and "3" in text

    def test_empty_records(self):
        assert format_records([]) == "(no rows)"


def test_percent():
    assert percent(0.4) == "40.0%"
    assert percent(0.3167) == "31.7%"
