"""Tests for table formatting."""

from repro.eval.report import (
    format_records,
    format_resilience,
    format_table,
    percent,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "n"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or "-" in line for line in lines[:1])
        assert "longer" in lines[3]

    def test_title(self):
        text = format_table(["a"], [[1]], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_floats_formatted(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.1" in text

    def test_records(self):
        text = format_records([{"x": 1, "y": 2}, {"x": 3, "y": 4}])
        assert "x" in text and "3" in text

    def test_empty_records(self):
        assert format_records([]) == "(no rows)"

    def test_empty_records_with_title(self):
        assert format_records([], title="Empty table") == "Empty table"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 2  # header + rule, no data rows

    def test_non_string_cells(self):
        text = format_table(
            ["v"], [[None], [True], [0], [b"bytes"], [(1, 2)]]
        )
        assert "None" in text
        assert "True" in text
        assert "(1, 2)" in text

    def test_records_with_missing_keys_render_blank(self):
        text = format_records([{"x": 1, "y": 2}, {"x": 3}])
        assert "3" in text  # the short record still renders


def test_percent():
    assert percent(0.4) == "40.0%"
    assert percent(0.3167) == "31.7%"
    assert percent(0.0) == "0.0%"
    assert percent(1.0) == "100.0%"


class TestFormatResilience:
    def test_zero_counters_are_accounted(self):
        text = format_resilience({})
        assert "Attempts" in text
        assert text.endswith("accounted")
        assert "NOT ACCOUNTED" not in text

    def test_accounted_ledger(self):
        text = format_resilience(
            {"attempts": 5, "successes": 3, "retries": 1, "exhausted": 1}
        )
        assert "NOT ACCOUNTED" not in text

    def test_unaccounted_ledger_flagged(self):
        text = format_resilience({"attempts": 5, "successes": 1})
        assert "NOT ACCOUNTED" in text

    def test_title_and_all_columns(self):
        text = format_resilience(
            {"attempts": 1, "successes": 1, "degraded_rows": 7},
            title="Chaos ledger",
        )
        assert text.splitlines()[0] == "Chaos ledger"
        assert "Degraded rows" in text
        assert "7" in text
