"""Tests for result normalisation and the EX comparison semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlengine.results import (
    ResultSet,
    normalize_cell,
    normalize_row,
    results_match,
    rows_to_multiset,
)


def rs(rows, columns=None):
    rows = [tuple(r) for r in rows]
    width = len(rows[0]) if rows else 0
    return ResultSet(columns=columns or [f"c{i}" for i in range(width)], rows=rows)


class TestNormalization:
    def test_bool_folds_to_int(self):
        assert normalize_cell(True) == 1
        assert normalize_cell(False) == 0

    def test_integral_float_folds_to_int(self):
        assert normalize_cell(3.0) == 3
        assert isinstance(normalize_cell(3.0), int)

    def test_float_rounding(self):
        assert normalize_cell(0.123456789) == 0.1235

    def test_bytes_decoded(self):
        assert normalize_cell(b"abc") == "abc"

    def test_none_passes_through(self):
        assert normalize_cell(None) is None

    def test_row_normalisation(self):
        assert normalize_row((1.0, "a", True)) == (1, "a", 1)


class TestResultsMatch:
    def test_identical_match(self):
        assert results_match(rs([(1, "a")]), rs([(1, "a")]))

    def test_column_names_ignored(self):
        assert results_match(
            rs([(1,)], columns=["x"]), rs([(1,)], columns=["totally_different"])
        )

    def test_row_count_mismatch(self):
        assert not results_match(rs([(1,)]), rs([(1,), (1,)]))

    def test_width_mismatch(self):
        assert not results_match(rs([(1,)]), rs([(1, 2)]))

    def test_unordered_default(self):
        assert results_match(rs([(1,), (2,)]), rs([(2,), (1,)]))

    def test_ordered_comparison(self):
        assert not results_match(rs([(1,), (2,)]), rs([(2,), (1,)]), ordered=True)
        assert results_match(rs([(1,), (2,)]), rs([(1,), (2,)]), ordered=True)

    def test_multiplicity_matters(self):
        assert not results_match(rs([(1,), (1,), (2,)]), rs([(1,), (2,), (2,)]))

    def test_float_vs_int_rows(self):
        assert results_match(rs([(3.0,)]), rs([(3,)]))

    def test_empty_results_match(self):
        assert results_match(rs([]), rs([]))
        assert results_match(rs([]), rs([]), ordered=True)


class TestResultSetHelpers:
    def test_scalar(self):
        assert rs([(42,)]).scalar() == 42
        assert rs([]).scalar() is None

    def test_column_values(self):
        assert rs([(1, "a"), (2, "b")]).column_values(1) == ["a", "b"]

    def test_len_iter_empty(self):
        result = rs([(1,), (2,)])
        assert len(result) == 2
        assert list(result) == [(1,), (2,)]
        assert not result.is_empty()
        assert rs([]).is_empty()

    def test_pretty_truncates(self):
        result = rs([(i,) for i in range(30)])
        text = result.pretty(max_rows=5)
        assert "more rows" in text


# -- property tests --------------------------------------------------------------

cells = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=6),
    st.none(),
    st.booleans(),
)
rows = st.lists(st.tuples(cells, cells), max_size=8)


@settings(max_examples=150, deadline=None)
@given(rows)
def test_match_is_reflexive(row_list):
    left = rs(row_list) if row_list else ResultSet(columns=[], rows=[])
    assert results_match(left, left)
    assert results_match(left, left, ordered=True)


@settings(max_examples=150, deadline=None)
@given(rows)
def test_unordered_match_invariant_under_permutation(row_list):
    reversed_rows = list(reversed(row_list))
    left = ResultSet(columns=["a", "b"], rows=row_list)
    right = ResultSet(columns=["a", "b"], rows=reversed_rows)
    assert results_match(left, right)


@settings(max_examples=150, deadline=None)
@given(rows, rows)
def test_match_is_symmetric(left_rows, right_rows):
    left = ResultSet(columns=["a", "b"], rows=left_rows)
    right = ResultSet(columns=["a", "b"], rows=right_rows)
    assert results_match(left, right) == results_match(right, left)


@settings(max_examples=150, deadline=None)
@given(rows)
def test_multiset_is_order_insensitive(row_list):
    assert rows_to_multiset(row_list) == rows_to_multiset(reversed(row_list))
