"""Tests for the Database wrapper."""

import pytest

from repro.errors import ExecutionError, SchemaError
from repro.sqlengine.database import Database
from repro.sqlengine.schema import ColumnSchema, TableSchema


@pytest.fixture()
def db():
    database = Database.in_memory()
    database.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    database.insert_rows("t", ["a", "b"], [(1, "x"), (2, "y"), (3, "z")])
    yield database
    database.close()


class TestExecution:
    def test_query(self, db):
        result = db.query("SELECT a, b FROM t ORDER BY a")
        assert result.columns == ["a", "b"]
        assert result.rows == [(1, "x"), (2, "y"), (3, "z")]

    def test_query_column_and_scalar(self, db):
        assert db.query_column("SELECT a FROM t ORDER BY a") == [1, 2, 3]
        assert db.query_scalar("SELECT COUNT(*) FROM t") == 3
        assert db.query_scalar("SELECT a FROM t WHERE a > 99") is None

    def test_parameters(self, db):
        assert db.query_scalar("SELECT b FROM t WHERE a = ?", (2,)) == "y"

    def test_bad_sql_raises_execution_error(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT nope FROM missing")

    def test_executescript(self, db):
        db.executescript("CREATE TABLE u (x); INSERT INTO u VALUES (1);")
        assert db.query_scalar("SELECT x FROM u") == 1


class TestSchemaOperations:
    def test_create_table_from_schema(self, db):
        schema = TableSchema("s", [ColumnSchema("n", "INTEGER")], primary_key=("n",))
        db.create_table(schema)
        assert db.has_table("s")
        assert db.table_columns("s") == ["n"]

    def test_create_if_not_exists(self, db):
        schema = TableSchema("s", [ColumnSchema("n", "INTEGER")])
        db.create_table(schema)
        db.create_table(schema, if_not_exists=True)  # no error

    def test_drop_table(self, db):
        db.drop_table("t")
        assert not db.has_table("t")
        db.drop_table("t")  # idempotent

    def test_table_names_excludes_internal(self, db):
        assert db.table_names() == ["t"]

    def test_table_columns_unknown_raises(self, db):
        with pytest.raises(SchemaError):
            db.table_columns("missing")

    def test_row_count(self, db):
        assert db.row_count("t") == 3


class TestTempTables:
    def test_temp_table_shadows_base(self, db):
        db.create_temp_table("t", ["a", "b"], [("9", "temp")])
        assert db.query_scalar("SELECT COUNT(*) FROM t") == 1

    def test_temp_table_replaced_on_recreate(self, db):
        db.create_temp_table("m", ["k", "v"], [("1", "a")])
        db.create_temp_table("m", ["k", "v"], [("1", "b"), ("2", "c")])
        assert db.query_scalar("SELECT COUNT(*) FROM m") == 2

    def test_empty_temp_table(self, db):
        db.create_temp_table("empty", ["k"])
        assert db.query_scalar("SELECT COUNT(*) FROM empty") == 0


class TestCloneAndSave:
    def test_clone_is_independent(self, db):
        clone = db.clone_in_memory()
        clone.execute("DELETE FROM t")
        assert clone.row_count("t") == 0
        assert db.row_count("t") == 3
        clone.close()

    def test_save_and_reopen(self, db, tmp_path):
        path = tmp_path / "saved.db"
        db.save_to(path)
        reopened = Database.open(path)
        assert reopened.row_count("t") == 3
        reopened.close()

    def test_context_manager_closes(self):
        with Database.in_memory() as database:
            database.execute("CREATE TABLE x (a)")
        with pytest.raises(ExecutionError):
            database.query("SELECT 1")


class TestChunkedInserts:
    def test_generator_input_streams(self, db):
        db.execute("CREATE TABLE big (n INTEGER)")
        db.insert_rows(
            "big", ["n"], ((i,) for i in range(1234)), chunk_size=100
        )
        assert db.query_scalar("SELECT COUNT(*) FROM big") == 1234
        assert db.query_scalar("SELECT SUM(n) FROM big") == sum(range(1234))

    def test_chunk_size_validated(self, db):
        with pytest.raises(ValueError):
            db.insert_rows("t", ["a", "b"], [(9, "w")], chunk_size=0)

    def test_bad_row_rolls_back_every_chunk(self, db):
        # a failure in a late chunk must not leave earlier chunks behind
        rows = [(i, "ok") for i in range(10)] + [("not", "enough", "cols")]
        with pytest.raises(ExecutionError):
            db.insert_rows("t", ["a", "b"], rows, chunk_size=2)
        assert db.query_scalar("SELECT COUNT(*) FROM t") == 3

    def test_temp_table_streams_chunks(self, db):
        db.create_temp_table(
            "tmp", ["n"], ((i,) for i in range(57)), chunk_size=10
        )
        assert db.query_scalar("SELECT COUNT(*) FROM tmp") == 57


class TestCreateIndex:
    def test_auto_named_index(self, db):
        name = db.create_index("t", ["a"])
        assert name == "idx_t_a"
        names = db.query_column(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
        assert "idx_t_a" in names

    def test_idempotent(self, db):
        db.create_index("t", ["a", "b"])
        db.create_index("t", ["a", "b"])  # IF NOT EXISTS: no error

    def test_empty_columns_rejected(self, db):
        with pytest.raises(ValueError):
            db.create_index("t", [])

    def test_temp_table_index_lands_in_temp_schema(self, db):
        db.create_temp_table("tmp", ["n"], [(1,), (2,)])
        db.create_index("tmp", ["n"])
        names = db.query_column(
            "SELECT name FROM temp.sqlite_master WHERE type = 'index'"
        )
        assert "idx_tmp_n" in names
