"""Tests for declarative schema objects."""

import pytest

from repro.errors import SchemaError
from repro.sqlengine.schema import (
    ColumnSchema,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)


def make_table():
    return TableSchema(
        "hero",
        [
            ColumnSchema("id", "INTEGER", nullable=False),
            ColumnSchema("name", "TEXT", nullable=False),
            ColumnSchema("publisher_id", "INTEGER"),
        ],
        primary_key=("id",),
        foreign_keys=[ForeignKey(("publisher_id",), "publisher", ("id",))],
    )


class TestColumnSchema:
    def test_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            ColumnSchema("x", "VARCHAR2")

    def test_ddl_not_null(self):
        assert ColumnSchema("x", "TEXT", nullable=False).ddl() == '"x" TEXT NOT NULL'

    def test_type_case_insensitive(self):
        assert ColumnSchema("x", "text").ddl().endswith("TEXT")


class TestForeignKey:
    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a", "b"), "t", ("c",))

    def test_ddl(self):
        fk = ForeignKey(("a",), "other", ("id",))
        assert fk.ddl() == 'FOREIGN KEY ("a") REFERENCES "other" ("id")'


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [ColumnSchema("a"), ColumnSchema("a")])

    def test_unknown_pk_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [ColumnSchema("a")], primary_key=("b",))

    def test_unknown_fk_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [ColumnSchema("a")],
                foreign_keys=[ForeignKey(("b",), "u", ("id",))],
            )

    def test_column_lookup(self):
        table = make_table()
        assert table.column("name").type == "TEXT"
        assert table.has_column("id")
        assert not table.has_column("ghost")
        with pytest.raises(SchemaError):
            table.column("ghost")

    def test_ddl_contains_pk_and_fk(self):
        ddl = make_table().ddl()
        assert 'PRIMARY KEY ("id")' in ddl
        assert "FOREIGN KEY" in ddl

    def test_without_columns(self):
        trimmed = make_table().without_columns(["publisher_id"])
        assert trimmed.column_names() == ["id", "name"]
        assert trimmed.foreign_keys == []  # fk referenced a dropped column

    def test_without_columns_trims_pk(self):
        trimmed = make_table().without_columns(["id"])
        assert trimmed.primary_key == ()

    def test_without_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_table().without_columns(["ghost"])


class TestDatabaseSchema:
    def test_duplicate_tables_rejected(self):
        table = make_table()
        with pytest.raises(SchemaError):
            DatabaseSchema("db", [table, make_table()])

    def test_lookup_and_names(self):
        db = DatabaseSchema("db", [make_table()])
        assert db.table("hero").name == "hero"
        assert db.has_table("hero")
        assert db.table_names() == ["hero"]
        with pytest.raises(SchemaError):
            db.table("missing")

    def test_describe_sketch(self):
        db = DatabaseSchema("db", [make_table()])
        assert db.describe() == "hero(id, name, publisher_id)"
