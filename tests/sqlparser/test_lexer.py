"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.tokens import TokenKind


def kinds(sql):
    return [t.kind for t in tokenize(sql)[:-1]]


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        assert texts("heroName Table_1") == ["heroName", "Table_1"]

    def test_eof_is_appended(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("SELECT 1")[-1].kind is TokenKind.EOF

    def test_numbers(self):
        assert texts("1 2.5 0.75 1e3 1.5E-2 0xFF") == [
            "1", "2.5", "0.75", "1e3", "1.5E-2", "0xFF",
        ]
        assert all(k is TokenKind.NUMBER for k in kinds("1 2.5 1e3"))

    def test_number_followed_by_dot_identifier_stays_separate(self):
        # `t1.c` style: identifier, dot, identifier
        assert texts("t1.c") == ["t1", ".", "c"]


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "hello"

    def test_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.text == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_empty_string(self):
        assert tokenize("''")[0].text == ""


class TestQuotedIdentifiers:
    def test_double_quoted(self):
        token = tokenize('"weird name"')[0]
        assert token.kind is TokenKind.IDENTIFIER
        assert token.text == "weird name"

    def test_backtick_and_bracket(self):
        assert tokenize("`col`")[0].text == "col"
        assert tokenize("[col]")[0].text == "col"

    def test_doubled_double_quote(self):
        assert tokenize('"a""b"')[0].text == 'a"b'

    def test_unterminated_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('"oops')


class TestOperators:
    def test_multi_char_operators(self):
        assert texts("<> != >= <= == || << >>") == [
            "<>", "!=", ">=", "<=", "==", "||", "<<", ">>",
        ]

    def test_single_char(self):
        assert texts("+ - * / % < > =") == ["+", "-", "*", "/", "%", "<", ">", "="]

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT #")


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("SELECT 1 -- trailing comment") == ["SELECT", "1"]

    def test_block_comment_skipped(self):
        assert texts("SELECT /* inline */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT /* oops")


class TestIngredients:
    def test_ingredient_span(self):
        tokens = tokenize("SELECT {{LLMMap('q', 't::c')}} FROM t")
        ingredient = [t for t in tokens if t.kind is TokenKind.INGREDIENT]
        assert len(ingredient) == 1
        assert ingredient[0].text == "LLMMap('q', 't::c')"

    def test_braces_inside_quotes_do_not_close(self):
        tokens = tokenize("{{LLMQA('why }} braces?')}}")
        assert tokens[0].text == "LLMQA('why }} braces?')"

    def test_unterminated_ingredient_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("{{LLMMap('q'")

    def test_escaped_quote_inside_ingredient(self):
        tokens = tokenize("{{LLMQA('it''s fine')}}")
        assert tokens[0].kind is TokenKind.INGREDIENT


class TestParameters:
    def test_question_mark(self):
        token = tokenize("?")[0]
        assert token.kind is TokenKind.PARAMETER
        assert token.text == "?"

    def test_named_parameter(self):
        assert tokenize(":name")[0].text == ":name"

    def test_bad_named_parameter(self):
        with pytest.raises(SQLSyntaxError):
            tokenize(": 1")


def test_line_tracking():
    tokens = tokenize("SELECT\n1\nFROM t")
    assert tokens[0].line == 1
    assert tokens[1].line == 2
    assert tokens[2].line == 3
