"""Tests for AST traversal and rewrite utilities."""

from repro.sqlparser import ast, parse, parse_expression, render
from repro.sqlparser.rewrite import (
    column_refs,
    contains_ingredient,
    expression_is_pure,
    find_ingredients,
    join_conjuncts,
    replace_ingredients,
    source_names,
    split_conjuncts,
    tables_in,
    transform,
    walk,
)


class TestWalk:
    def test_walk_visits_all_nodes(self):
        tree = parse("SELECT a + b FROM t WHERE c = 1")
        kinds = {type(node).__name__ for node in walk(tree)}
        assert {"Select", "SelectItem", "BinaryOp", "ColumnRef", "TableName",
                "Literal"} <= kinds

    def test_walk_enters_compound(self):
        tree = parse("SELECT a FROM t UNION SELECT b FROM u")
        tables = {t.name for t in tables_in(tree)}
        assert tables == {"t", "u"}

    def test_walk_enters_subqueries(self):
        tree = parse("SELECT a FROM t WHERE b IN (SELECT b FROM u)")
        assert {t.name for t in tables_in(tree)} == {"t", "u"}


class TestTransform:
    def test_identity_returns_equal_tree(self):
        tree = parse("SELECT a FROM t WHERE b = 1")
        assert transform(tree, lambda n: n) == tree

    def test_rename_columns(self):
        tree = parse("SELECT a FROM t WHERE a > 1")

        def rename(node):
            if isinstance(node, ast.ColumnRef) and node.column == "a":
                return ast.ColumnRef("z")
            return node

        rewritten = transform(tree, rename)
        assert "z" in render(rewritten)
        assert " a " not in f" {render(rewritten)} "
        # original tree untouched
        assert "z" not in render(tree)


class TestConjuncts:
    def test_split_nested_ands(self):
        expr = parse_expression("a = 1 AND b = 2 AND c = 3")
        assert len(split_conjuncts(expr)) == 3

    def test_or_is_one_conjunct(self):
        expr = parse_expression("a = 1 OR b = 2")
        assert len(split_conjuncts(expr)) == 1

    def test_split_none(self):
        assert split_conjuncts(None) == []

    def test_join_round_trips(self):
        expr = parse_expression("a = 1 AND b = 2")
        rebuilt = join_conjuncts(split_conjuncts(expr))
        assert rebuilt == expr

    def test_join_empty_is_none(self):
        assert join_conjuncts([]) is None


class TestIngredientHelpers:
    def test_find_ingredients(self):
        tree = parse(
            "SELECT {{LLMMap('q1', 't::a')}} FROM t WHERE {{LLMQA('q2')}} = 'x'"
        )
        names = [ing.name for ing in find_ingredients(tree)]
        assert sorted(names) == ["LLMMap", "LLMQA"]

    def test_contains_ingredient(self):
        assert contains_ingredient(parse("SELECT {{LLMQA('q')}}"))
        assert not contains_ingredient(parse("SELECT 1"))

    def test_expression_is_pure(self):
        assert expression_is_pure(parse_expression("a + b = 2"))
        assert not expression_is_pure(parse_expression("{{LLMQA('q')}} = 2"))

    def test_replace_expression_ingredient(self):
        tree = parse("SELECT a FROM t WHERE {{LLMQA('q')}} = 'x'")
        rewritten = replace_ingredients(
            tree, lambda ing: ast.Literal.string("answer")
        )
        assert "{{" not in render(rewritten)
        assert "'answer'" in render(rewritten)

    def test_replace_from_source_ingredient(self):
        tree = parse("SELECT * FROM {{LLMJoin('q', 't::a')}} AS j")
        rewritten = replace_ingredients(
            tree, lambda ing: ast.TableName("generated", alias="j")
        )
        assert isinstance(rewritten.from_, ast.TableName)
        assert rewritten.from_.name == "generated"


class TestSourceNames:
    def test_aliases_and_bare_names(self):
        tree = parse("SELECT * FROM a AS x JOIN b ON x.i = b.i")
        names = source_names(tree.from_)
        assert set(names) == {"x", "b"}

    def test_subquery_alias(self):
        tree = parse("SELECT * FROM (SELECT 1) AS sub")
        assert set(source_names(tree.from_)) == {"sub"}

    def test_column_refs(self):
        refs = column_refs(parse_expression("t.a + b"))
        assert {(r.table, r.column) for r in refs} == {("t", "a"), (None, "b")}
