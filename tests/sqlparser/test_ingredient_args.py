"""Tests for the {{...}} ingredient argument mini-parser."""

import pytest

from repro.errors import IngredientError
from repro.sqlparser.parser import (
    _ingredient_value,
    _parse_ingredient,
    _split_ingredient_args,
)


class TestSplitArgs:
    def test_simple_split(self):
        assert _split_ingredient_args("'a', 'b', 'c'") == ["'a'", " 'b'", " 'c'"]

    def test_comma_inside_quotes_preserved(self):
        parts = _split_ingredient_args("'hello, world', 'x'")
        assert len(parts) == 2
        assert parts[0] == "'hello, world'"

    def test_nested_parens(self):
        parts = _split_ingredient_args("'q', fn(a, b), 'z'")
        assert len(parts) == 3
        assert parts[1].strip() == "fn(a, b)"

    def test_nested_brackets(self):
        parts = _split_ingredient_args("options=['a', 'b'], x=1")
        assert len(parts) == 2

    def test_escaped_quote_inside(self):
        parts = _split_ingredient_args("'it''s, tricky', 'b'")
        assert len(parts) == 2

    def test_empty(self):
        assert _split_ingredient_args("") == []


class TestValueDecoding:
    def test_quoted_string(self):
        assert _ingredient_value("'hello'") == "hello"

    def test_doubled_quotes_unescaped(self):
        assert _ingredient_value("'it''s'") == "it's"

    def test_booleans_and_none(self):
        assert _ingredient_value("true") is True
        assert _ingredient_value("False") is False
        assert _ingredient_value("none") is None
        assert _ingredient_value("NULL") is None

    def test_numbers(self):
        assert _ingredient_value("5") == 5
        assert _ingredient_value("2.5") == 2.5

    def test_list_value(self):
        assert _ingredient_value("['a', 'b', 3]") == ["a", "b", 3]

    def test_bare_word_passes_through(self):
        assert _ingredient_value("publishers") == "publishers"


class TestParseIngredient:
    def test_full_call(self):
        node = _parse_ingredient(
            "LLMMap('q?', 't::c', options='list', batch=5, strict=true)"
        )
        assert node.name == "LLMMap"
        assert node.args == ["q?", "t::c"]
        assert node.options == {"options": "list", "batch": 5, "strict": True}

    def test_no_parens_rejected(self):
        with pytest.raises(IngredientError):
            _parse_ingredient("LLMMap 'q'")

    def test_bad_name_rejected(self):
        with pytest.raises(IngredientError):
            _parse_ingredient("LLM-Map('q')")

    def test_equals_inside_quoted_arg_is_positional(self):
        node = _parse_ingredient("LLMQA('is x = y?')")
        assert node.args == ["is x = y?"]
        assert node.options == {}

    def test_empty_args(self):
        node = _parse_ingredient("LLMQA()")
        assert node.args == []

    def test_raw_preserved(self):
        content = "LLMQA('q')"
        assert _parse_ingredient(content).raw == content
