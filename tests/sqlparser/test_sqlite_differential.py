"""Differential testing: rendered SQL must behave identically in SQLite.

For randomly generated SELECT statements over a fixed schema, executing
``render(parse(sql))`` must produce exactly the rows of executing ``sql``
— the ultimate check that parsing and rendering never change semantics.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

SCHEMA = """
CREATE TABLE t (a INTEGER, b INTEGER, c TEXT);
CREATE TABLE u (a INTEGER, d TEXT);
INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y'), (3, 30, 'z'),
                     (4, 40, 'x'), (5, NULL, 'y'), (NULL, 60, NULL);
INSERT INTO u VALUES (1, 'p'), (2, 'q'), (3, 'r'), (7, 's');
"""


@pytest.fixture(scope="module")
def connection():
    conn = sqlite3.connect(":memory:")
    conn.executescript(SCHEMA)
    yield conn
    conn.close()


_columns = st.sampled_from(["a", "b", "t.a", "t.b"])
_literals = st.integers(min_value=-5, max_value=50).map(str)
_operands = st.one_of(_columns, _literals)
_comparisons = st.builds(
    lambda left, op, right: f"{left} {op} {right}",
    _operands,
    st.sampled_from(["=", "!=", "<", ">", "<=", ">="]),
    _operands,
)
_conditions = st.recursive(
    st.one_of(
        _comparisons,
        st.builds(lambda c: f"{c} IS NULL", _columns),
        st.builds(lambda c: f"{c} IN (1, 2, 3)", _columns),
        st.builds(lambda c: f"{c} BETWEEN 1 AND 4", _columns),
        st.builds(lambda c: f"c LIKE '{c}%'", st.sampled_from(["x", "y", "z"])),
    ),
    lambda children: st.one_of(
        st.builds(lambda l, r: f"({l} AND {r})", children, children),
        st.builds(lambda l, r: f"({l} OR {r})", children, children),
        st.builds(lambda c: f"NOT ({c})", children),
    ),
    max_leaves=4,
)

_select_lists = st.sampled_from(
    [
        "a, b, c",
        "DISTINCT c",
        "COUNT(*)",
        "a + b",
        "MAX(b), MIN(a)",
        "CASE WHEN a > 2 THEN 'big' ELSE 'small' END",
        "CAST(a AS TEXT)",
        "a * 2 - b / 2",
    ]
)

_tails = st.sampled_from(
    [
        "",
        " ORDER BY a",
        " ORDER BY b DESC, a",
        " LIMIT 3",
        " ORDER BY a LIMIT 2 OFFSET 1",
    ]
)


def _execute(conn, sql):
    return conn.execute(sql).fetchall()


@settings(max_examples=300, deadline=None)
@given(select=_select_lists, condition=_conditions, tail=_tails)
def test_rendered_sql_is_semantically_identical(connection, select, condition, tail):
    from repro.sqlparser import parse, render

    aggregate = "COUNT" in select or "MAX" in select
    order_tail = "" if aggregate else tail
    sql = f"SELECT {select} FROM t WHERE {condition}{order_tail}"
    expected = _execute(connection, sql)
    rendered = render(parse(sql))
    assert _execute(connection, rendered) == expected


_qualified_comparisons = st.builds(
    lambda left, op, right: f"{left} {op} {right}",
    st.sampled_from(["t.a", "t.b", "u.a"]),
    st.sampled_from(["=", "!=", "<", ">", "<=", ">="]),
    st.one_of(st.sampled_from(["t.a", "t.b"]), _literals),
)


@settings(max_examples=100, deadline=None)
@given(condition=_qualified_comparisons)
def test_join_queries_differential(connection, condition):
    from repro.sqlparser import parse, render

    sql = (
        "SELECT t.a, u.d FROM t JOIN u ON t.a = u.a "
        f"WHERE {condition} ORDER BY t.a"
    )
    expected = _execute(connection, sql)
    rendered = render(parse(sql))
    assert _execute(connection, rendered) == expected


@settings(max_examples=100, deadline=None)
@given(condition=_conditions)
def test_subquery_differential(connection, condition):
    from repro.sqlparser import parse, render

    sql = (
        "SELECT COUNT(*) FROM t WHERE a IN "
        f"(SELECT a FROM u WHERE d != 'nope') AND ({condition})"
    )
    expected = _execute(connection, sql)
    rendered = render(parse(sql))
    assert _execute(connection, rendered) == expected
