"""Renderer tests: fidelity, parenthesisation, and round-trip stability."""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlparser import ast, parse, parse_expression, render, render_expression
from repro.sqlparser.render import quote_identifier, quote_string

ROUND_TRIP_CASES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b AS x FROM t WHERE a > 1",
    "SELECT COUNT(DISTINCT a), MAX(b) FROM t GROUP BY c HAVING COUNT(*) > 2",
    "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.x = c.x",
    "SELECT * FROM a CROSS JOIN b",
    "SELECT * FROM a JOIN b USING (id)",
    "SELECT a FROM (SELECT a FROM t WHERE b IN (1, 2)) AS sub",
    "SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t",
    "SELECT CASE x WHEN 1 THEN 'a' END FROM t",
    "SELECT CAST(a AS REAL) FROM t",
    "SELECT a FROM t WHERE b BETWEEN 1 AND 2 AND c NOT LIKE 'x%'",
    "SELECT a FROM t WHERE b IS NOT NULL OR c IS NULL",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a)",
    "WITH c AS (SELECT 1 AS x) SELECT x FROM c",
    "SELECT a FROM t UNION ALL SELECT a FROM u ORDER BY a LIMIT 3",
    "SELECT -a, +b, ~c FROM t",
    "SELECT a || b || c FROM t",
    "SELECT 1 - (2 - 3)",
    "SELECT (1 + 2) * 3",
    "SELECT a FROM t ORDER BY a DESC NULLS LAST",
    "SELECT {{LLMMap('q', 't::c')}} FROM t",
    "SELECT a FROM t LIMIT 10 OFFSET 5",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_CASES)
def test_render_parse_fixpoint(sql):
    """render(parse(x)) re-parses to an identical rendering."""
    once = render(parse(sql))
    assert render(parse(once)) == once


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT 1 - (2 - 3)",
        "SELECT (1 + 2) * 3",
        "SELECT 2 * (3 + 4) - 5",
        "SELECT 100 / (5 / 5)",
        "SELECT -(1 + 2)",
        "SELECT 1 + 2 * 3 - 4",
        "SELECT (1 - 2) - 3, 1 - (2 - 3)",
    ],
)
def test_rendered_sql_preserves_arithmetic_semantics(sql):
    """Rendered SQL evaluates to the same value as the original in SQLite."""
    conn = sqlite3.connect(":memory:")
    original = conn.execute(sql).fetchone()
    rendered = conn.execute(render(parse(sql))).fetchone()
    assert original == rendered


class TestQuoting:
    def test_safe_names_stay_bare(self):
        assert quote_identifier("hero_name") == "hero_name"

    def test_reserved_words_quoted(self):
        assert quote_identifier("select") == '"select"'
        assert quote_identifier("ORDER") == '"ORDER"'

    def test_spaces_and_quotes(self):
        assert quote_identifier("a b") == '"a b"'
        assert quote_identifier('a"b') == '"a""b"'

    def test_leading_digit_quoted(self):
        assert quote_identifier("1abc") == '"1abc"'

    def test_string_quoting(self):
        assert quote_string("it's") == "'it''s'"


class TestExpressionRendering:
    def test_right_operand_same_level_parenthesised(self):
        expr = ast.BinaryOp("-", ast.Literal.number(1),
                            ast.BinaryOp("-", ast.Literal.number(2), ast.Literal.number(3)))
        assert render_expression(expr) == "1 - (2 - 3)"

    def test_null_and_bools(self):
        assert render_expression(ast.Literal.null()) == "NULL"
        assert render_expression(ast.Literal.boolean(True)) == "TRUE"

    def test_ingredient_round_trips_options(self):
        sql = "SELECT {{LLMMap('q', 't::c', options='publishers')}} FROM t"
        assert "options='publishers'" in render(parse(sql))


# -- property-based round-trip over generated expressions ----------------------

_names = st.sampled_from(["a", "b", "col1", "hero_name", "t.x"])
_literals = st.one_of(
    st.integers(min_value=0, max_value=10_000).map(ast.Literal.number),
    st.text(alphabet="abc xyz'", min_size=0, max_size=8).map(ast.Literal.string),
    st.just(ast.Literal.null()),
)


def _column(name: str) -> ast.Expr:
    if "." in name:
        table, _, column = name.partition(".")
        return ast.ColumnRef(column, table)
    return ast.ColumnRef(name)


_atoms = st.one_of(_literals, _names.map(_column))


def _expressions(children):
    binary = st.builds(
        ast.BinaryOp,
        st.sampled_from(["+", "-", "*", "/", "AND", "OR", "=", "<", "||"]),
        children,
        children,
    )
    unary = st.builds(ast.UnaryOp, st.sampled_from(["-", "NOT"]), children)
    is_null = st.builds(ast.IsNull, children, st.booleans())
    between = st.builds(ast.Between, children, children, children, st.booleans())
    return st.one_of(binary, unary, is_null, between)


expression_strategy = st.recursive(_atoms, _expressions, max_leaves=12)


@settings(max_examples=200, deadline=None)
@given(expression_strategy)
def test_expression_round_trip_property(expr):
    """parse(render(e)) renders identically to render(e) for random trees."""
    rendered = render_expression(expr)
    reparsed = parse_expression(rendered)
    assert render_expression(reparsed) == rendered
