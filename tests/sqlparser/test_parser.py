"""Unit tests for the SQL parser."""

import pytest

from repro.errors import IngredientError, SQLSyntaxError
from repro.sqlparser import ast, parse, parse_expression


class TestSelectCore:
    def test_simple_select(self):
        tree = parse("SELECT a, b FROM t")
        assert [item.expr.column for item in tree.items] == ["a", "b"]
        assert isinstance(tree.from_, ast.TableName)
        assert tree.from_.name == "t"

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct
        assert not parse("SELECT ALL a FROM t").distinct

    def test_star_and_qualified_star(self):
        tree = parse("SELECT *, t.* FROM t")
        assert isinstance(tree.items[0].expr, ast.Star)
        assert tree.items[1].expr.table == "t"

    def test_aliases(self):
        tree = parse("SELECT a AS x, b y, c FROM t")
        assert [item.alias for item in tree.items] == ["x", "y", None]

    def test_where_group_having(self):
        tree = parse("SELECT a FROM t WHERE a > 1 GROUP BY a, b HAVING COUNT(*) > 2")
        assert isinstance(tree.where, ast.BinaryOp)
        assert len(tree.group_by) == 2
        assert isinstance(tree.having, ast.BinaryOp)

    def test_order_limit_offset(self):
        tree = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2")
        assert tree.order_by[0].descending
        assert not tree.order_by[1].descending
        assert tree.limit.value == 5
        assert tree.offset.value == 2

    def test_limit_comma_form(self):
        tree = parse("SELECT a FROM t LIMIT 2, 5")
        assert tree.limit.value == 5
        assert tree.offset.value == 2

    def test_missing_from_is_fine(self):
        tree = parse("SELECT 1 + 2")
        assert tree.from_ is None

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT a FROM t garbage !")

    def test_semicolon_tolerated(self):
        assert parse("SELECT 1;") is not None


class TestJoins:
    def test_inner_join_on(self):
        tree = parse("SELECT * FROM a JOIN b ON a.id = b.id")
        join = tree.from_
        assert isinstance(join, ast.Join)
        assert join.kind == "INNER"
        assert isinstance(join.on, ast.BinaryOp)

    def test_left_outer(self):
        assert parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x").from_.kind == "LEFT"

    def test_cross_join_and_comma(self):
        assert parse("SELECT * FROM a CROSS JOIN b").from_.kind == "CROSS"
        assert parse("SELECT * FROM a, b").from_.kind == "CROSS"

    def test_using(self):
        join = parse("SELECT * FROM a JOIN b USING (id, name)").from_
        assert join.using == ["id", "name"]

    def test_chained_joins_left_assoc(self):
        join = parse("SELECT * FROM a JOIN b ON a.i = b.i JOIN c ON b.j = c.j").from_
        assert isinstance(join.left, ast.Join)
        assert isinstance(join.right, ast.TableName)

    def test_subquery_source(self):
        source = parse("SELECT * FROM (SELECT a FROM t) AS sub").from_
        assert isinstance(source, ast.SubquerySource)
        assert source.alias == "sub"


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_concat_binds_tighter_than_multiplication(self):
        expr = parse_expression("a * b || c")
        assert expr.op == "*"
        assert expr.right.op == "||"

    def test_and_or(self):
        expr = parse_expression("a OR b AND c")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = b")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "NOT"

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)
        assert not expr.negated

    def test_not_between(self):
        assert parse_expression("x NOT BETWEEN 1 AND 5").negated

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_in_subquery(self):
        expr = parse_expression("x IN (SELECT a FROM t)")
        assert isinstance(expr, ast.InSubquery)

    def test_like_with_escape(self):
        expr = parse_expression("x LIKE 'a%' ESCAPE '!'")
        assert isinstance(expr, ast.Like)
        assert expr.escape.value == "!"

    def test_is_null_variants(self):
        assert not parse_expression("x IS NULL").negated
        assert parse_expression("x IS NOT NULL").negated

    def test_case_searched(self):
        expr = parse_expression("CASE WHEN a THEN 1 ELSE 2 END")
        assert expr.operand is None
        assert len(expr.whens) == 1
        assert expr.else_.value == 2

    def test_case_with_operand(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END")
        assert expr.operand is not None
        assert len(expr.whens) == 2

    def test_case_without_when_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("CASE ELSE 1 END")

    def test_cast(self):
        expr = parse_expression("CAST(x AS INTEGER)")
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "INTEGER"

    def test_cast_with_size(self):
        assert parse_expression("CAST(x AS VARCHAR(10))").type_name == "VARCHAR(10)"

    def test_function_call_distinct(self):
        expr = parse_expression("COUNT(DISTINCT a)")
        assert expr.distinct

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1)")
        assert isinstance(expr, ast.Exists)

    def test_not_exists(self):
        assert parse_expression("NOT EXISTS (SELECT 1)").negated

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT MAX(a) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_tuple(self):
        expr = parse_expression("(1, 2)")
        assert isinstance(expr, ast.ExprList)

    def test_unary_minus(self):
        expr = parse_expression("-x")
        assert expr.op == "-"

    def test_booleans_and_null(self):
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False
        assert parse_expression("NULL").value is None

    def test_comparison_normalisation(self):
        assert parse_expression("a == b").op == "="
        assert parse_expression("a <> b").op == "!="


class TestCompound:
    def test_union_all(self):
        tree = parse("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert tree.compound[0][0] == "UNION ALL"

    def test_intersect_except(self):
        tree = parse("SELECT a FROM t INTERSECT SELECT a FROM u EXCEPT SELECT a FROM v")
        assert [op for op, _ in tree.compound] == ["INTERSECT", "EXCEPT"]

    def test_order_by_applies_to_compound(self):
        tree = parse("SELECT a FROM t UNION SELECT a FROM u ORDER BY a")
        assert tree.order_by


class TestCTE:
    def test_single_cte(self):
        tree = parse("WITH top AS (SELECT a FROM t) SELECT * FROM top")
        assert tree.ctes[0].name == "top"

    def test_cte_with_columns(self):
        tree = parse("WITH c(x, y) AS (SELECT 1, 2) SELECT * FROM c")
        assert tree.ctes[0].columns == ["x", "y"]

    def test_multiple_ctes(self):
        tree = parse("WITH a AS (SELECT 1), b AS (SELECT 2) SELECT * FROM a, b")
        assert len(tree.ctes) == 2


class TestIngredientsInSQL:
    def test_ingredient_as_expression(self):
        tree = parse("SELECT {{LLMMap('q', 't::c')}} FROM t")
        assert isinstance(tree.items[0].expr, ast.Ingredient)

    def test_ingredient_args(self):
        tree = parse("SELECT {{LLMMap('q', 't::c', options='list', batch=5)}} FROM t")
        node = tree.items[0].expr
        assert node.name == "LLMMap"
        assert node.args == ["q", "t::c"]
        assert node.options == {"options": "list", "batch": 5}

    def test_ingredient_escaped_quotes(self):
        tree = parse("SELECT {{LLMQA('it''s a question')}}")
        assert tree.items[0].expr.args == ["it's a question"]

    def test_ingredient_in_from(self):
        tree = parse("SELECT * FROM {{LLMJoin('q', 't::c')}} AS j")
        assert isinstance(tree.from_, ast.IngredientSource)
        assert tree.from_.alias == "j"

    def test_malformed_ingredient_raises(self):
        with pytest.raises(IngredientError):
            parse("SELECT {{not valid}}")

    def test_ingredient_value_decoding(self):
        tree = parse("SELECT {{LLMQA('q', flag=true, nothing=none, n=2.5)}}")
        node = tree.items[0].expr
        assert node.options == {"flag": True, "nothing": None, "n": 2.5}
