"""Acceptance tests for end-to-end tracing: the ISSUE's contract.

1. **Telemetry is invisible.**  A run with full telemetry produces
   byte-identical outcomes, usage, and cache statistics to a run with
   the null handle.
2. **Traces are reproducible.**  Under a SimulatedClock, two traced
   runs of the same configuration yield identical span trees —
   timestamps, ids, and attributes included.
3. **Attribution is exhaustive.**  The per-stage summary attributes
   >= 95% of recorded virtual time to named stages.
4. **The trace CLI writes its artifacts**, and the Chrome export is a
   valid trace_event payload.
"""

import json

import pytest

from repro.harness.runner import GoldResults, run_hqdl, run_udf
from repro.harness.tracing import (
    format_trace_report,
    measure_trace,
    trace_pipelines,
    write_trace_json,
)
from repro.llm.parallel import SimulatedClock, SimulatedLatencyClient
from repro.obs import Telemetry

DBS = ["superhero"]
MODEL = "gpt-3.5-turbo"


@pytest.fixture(scope="module")
def gold(swan):
    return GoldResults(swan)


def _outcome_key(outcome):
    return (outcome.qid, outcome.correct, outcome.error)


class TestTelemetryIsInvisible:
    def test_udf_results_identical(self, swan, gold):
        plain = run_udf(swan, MODEL, 0, databases=DBS, gold=gold)
        traced = run_udf(
            swan, MODEL, 0, databases=DBS, gold=gold,
            telemetry=Telemetry.on(SimulatedClock(1)),
        )
        assert [_outcome_key(o) for o in plain.outcomes] == [
            _outcome_key(o) for o in traced.outcomes
        ]
        assert plain.usage == traced.usage
        assert plain.cache_hits == traced.cache_hits
        assert plain.cache_misses == traced.cache_misses

    def test_hqdl_results_identical(self, swan, gold):
        plain = run_hqdl(swan, MODEL, 0, databases=DBS, gold=gold)
        traced = run_hqdl(
            swan, MODEL, 0, databases=DBS, gold=gold,
            telemetry=Telemetry.on(SimulatedClock(1)),
        )
        assert [_outcome_key(o) for o in plain.outcomes] == [
            _outcome_key(o) for o in traced.outcomes
        ]
        assert plain.usage == traced.usage
        assert plain.f1_by_db == traced.f1_by_db


class TestTracesAreReproducible:
    def trace_once(self, swan, gold):
        clock = SimulatedClock(1)
        telemetry = Telemetry.on(clock)
        run_udf(
            swan, MODEL, 0, databases=DBS, gold=gold,
            wrap_client=lambda m: SimulatedLatencyClient(m, clock),
            telemetry=telemetry,
        )
        return telemetry

    def test_identical_span_trees(self, swan, gold):
        a = self.trace_once(swan, gold)
        b = self.trace_once(swan, gold)
        assert len(a.tracer.spans) == len(b.tracer.spans)
        assert [r.tree() for r in a.tracer.roots] == [
            r.tree() for r in b.tracer.roots
        ]
        assert [s.span_id for s in a.tracer.spans] == [
            s.span_id for s in b.tracer.spans
        ]

    def test_identical_metrics(self, swan, gold):
        a = self.trace_once(swan, gold)
        b = self.trace_once(swan, gold)
        assert a.metrics.snapshot() == b.metrics.snapshot()

    def test_span_hierarchy_runs_deep(self, swan, gold):
        tracer = self.trace_once(swan, gold).tracer
        (root,) = tracer.roots
        assert root.name == "run"
        names = {s.name for s in tracer.spans}
        # the full pipeline is visible: run -> database -> question ->
        # sql stages -> dispatch -> cache-mediated LLM calls
        assert {
            "run", "database", "question", "sql:parse", "sql:rewrite",
            "sql:execute", "dispatch", "llm:call", "llm:cache",
        } <= names


class TestAttribution:
    def test_at_least_95_percent_attributed(self, swan):
        traces = trace_pipelines(swan, databases=DBS)
        for trace in traces.values():
            assert trace.attributed_share >= 0.95
            assert trace.makespan > 0

    def test_stage_records_carry_tokens(self, swan):
        traces = trace_pipelines(swan, databases=DBS)
        for trace in traces.values():
            total_in = sum(r["input_tokens"] for r in trace.stages)
            assert total_in == trace.usage.input_tokens

    def test_trace_ex_matches_untraced_run(self, swan, gold):
        traces = trace_pipelines(swan, databases=DBS)
        plain = run_udf(swan, MODEL, 0, databases=DBS, gold=gold)
        assert traces["udf"].ex == plain.overall_ex


class TestTraceArtifacts:
    def test_write_trace_json(self, swan, tmp_path):
        paths, payload = write_trace_json(
            tmp_path / "BENCH_trace.json", swan=swan, databases=DBS
        )
        trace_path, chrome_path, spans_path, prom_path = paths
        assert all(p.exists() for p in paths)

        loaded = json.loads(trace_path.read_text())
        assert loaded == payload
        assert set(loaded["pipelines"]) == {"udf", "hqdl"}
        for entry in loaded["pipelines"].values():
            assert entry["attributed_share"] >= 0.95
            assert entry["stages"]

        chrome = json.loads(chrome_path.read_text())
        events = chrome["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X"}
        assert {e["pid"] for e in events} == {1, 2}
        complete = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 and "ts" in e for e in complete)

        for line in spans_path.read_text().splitlines():
            record = json.loads(line)
            assert record["pipeline"] in {"udf", "hqdl"}

        assert "# pipeline: udf" in prom_path.read_text()
        assert "llm_cache_hits" in prom_path.read_text()

    def test_console_report(self, swan):
        payload, _ = measure_trace(swan, databases=DBS)
        text = format_trace_report(payload)
        assert "UDF per-stage breakdown" in text
        assert "HQDL per-stage breakdown" in text
        assert "Stage" in text and "Share" in text
