"""Tests for the `python -m repro.harness` CLI."""

import pytest

from repro.harness.__main__ import main


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Formula One" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "Marvel" in capsys.readouterr().out

    def test_multiple_targets(self, capsys):
        assert main(["table1", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 1" in out

    def test_unknown_target(self, capsys):
        assert main(["table9"]) == 2
        assert "unknown targets" in capsys.readouterr().out
