"""Tests for the `python -m repro.harness` CLI."""

import pytest

from repro.harness.__main__ import main


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Formula One" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "Marvel" in capsys.readouterr().out

    def test_multiple_targets(self, capsys):
        assert main(["table1", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 1" in out

    def test_unknown_target(self, capsys):
        assert main(["table9"]) == 2
        err = capsys.readouterr().err
        assert "unknown targets" in err
        assert "usage:" in err


class TestCLIHardening:
    def test_unknown_target_exits_nonzero_with_usage(self, capsys):
        assert main(["nonsense"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "unknown targets: nonsense" in captured.err
        assert "usage:" in captured.err

    def test_unknown_flag_exits_nonzero(self, capsys):
        assert main(["--frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown flag: --frobnicate" in err
        assert "usage:" in err

    def test_bad_workers_value(self, capsys):
        assert main(["trace", "--workers=banana"]) == 2
        err = capsys.readouterr().err
        assert "--workers requires an integer" in err

    def test_nonpositive_workers(self, capsys):
        assert main(["trace", "--workers=0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_databases_flag_requires_value(self, capsys):
        assert main(["trace", "--databases="]) == 2
        assert "--databases requires" in capsys.readouterr().err

    def test_help_exits_zero_with_usage(self, capsys):
        assert main(["--help"]) == 0
        captured = capsys.readouterr()
        assert "usage:" in captured.out
        assert captured.err == ""

    def test_mixed_unknown_targets_listed(self, capsys):
        assert main(["table1", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err


class TestTraceTarget:
    def test_trace_writes_artifacts(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "--databases=superhero"]) == 0
        out = capsys.readouterr().out
        assert "UDF per-stage breakdown" in out
        assert "HQDL per-stage breakdown" in out
        assert (tmp_path / "BENCH_trace.json").exists()
        assert (tmp_path / "BENCH_trace_chrome.json").exists()

    def test_trace_excluded_from_all(self):
        from repro.harness.__main__ import _EXCLUDED_FROM_ALL, _GENERATORS

        assert "trace" in _GENERATORS
        assert "trace" in _EXCLUDED_FROM_ALL


class TestBatchSizeAndCacheDirFlags:
    def test_bad_batch_size_value(self, capsys):
        assert main(["bench-cache", "--batch-size=abc"]) == 2
        err = capsys.readouterr().err
        assert "--batch-size requires an integer" in err
        assert "usage:" in err

    def test_nonpositive_batch_size(self, capsys):
        assert main(["bench-cache", "--batch-size=0"]) == 2
        assert "--batch-size must be >= 1" in capsys.readouterr().err

    def test_cache_dir_requires_value(self, capsys):
        assert main(["bench-cache", "--cache-dir="]) == 2
        err = capsys.readouterr().err
        assert "--cache-dir requires a directory path" in err
        assert "usage:" in err

    def test_flags_documented_in_usage(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "--batch-size=N" in out
        assert "--cache-dir=DIR" in out


class TestScaleAndParallelismFlags:
    def test_bad_scale_value(self, capsys):
        assert main(["run-udf", "--scale=abc"]) == 2
        err = capsys.readouterr().err
        assert "--scale requires an integer" in err
        assert "usage:" in err

    def test_nonpositive_scale(self, capsys):
        assert main(["run-udf", "--scale=0"]) == 2
        err = capsys.readouterr().err
        assert "--scale must be >= 1" in err
        assert "usage:" in err

    def test_bad_parallelism_value(self, capsys):
        assert main(["run-udf", "--parallelism=fibers"]) == 2
        err = capsys.readouterr().err
        assert "--parallelism must be 'threads' or 'processes'" in err
        assert "usage:" in err

    def test_run_udf_prints_per_database_ex(self, capsys):
        assert main(["run-udf", "--databases=superhero", "--scale=1"]) == 0
        out = capsys.readouterr().out
        assert "UDF run" in out
        assert "superhero" in out
        assert "scale=1" in out

    def test_run_hqdl_prints_per_database_ex(self, capsys):
        assert main(["run-hqdl", "--databases=superhero"]) == 0
        out = capsys.readouterr().out
        assert "HQDL run" in out
        assert "parallelism=threads" in out

    def test_scale_targets_excluded_from_all(self):
        from repro.harness.__main__ import _EXCLUDED_FROM_ALL, _GENERATORS

        for target in ("run-udf", "run-hqdl", "bench-scale"):
            assert target in _GENERATORS
            assert target in _EXCLUDED_FROM_ALL

    def test_scale_flags_documented_in_usage(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "--scale=N" in out
        assert "--parallelism=threads|processes" in out


class TestExplainCommand:
    def test_requires_database_and_question(self, capsys):
        assert main(["explain"]) == 2
        err = capsys.readouterr().err
        assert "explain requires --database=NAME and --question=REF" in err
        assert "usage:" in err

    def test_unknown_database(self, capsys):
        assert main(["explain", "--database=nope", "--question=1"]) == 2
        err = capsys.readouterr().err
        assert "unknown database" in err
        assert "usage:" in err

    def test_question_index_out_of_range(self, capsys):
        assert main(["explain", "--database=superhero", "--question=99"]) == 2
        assert "question index must be" in capsys.readouterr().err

    def test_bad_pipeline_value(self, capsys):
        assert main([
            "explain", "--database=superhero", "--question=1",
            "--pipeline=magic",
        ]) == 2
        assert "--pipeline must be 'udf' or 'hqdl'" in capsys.readouterr().err

    def test_must_be_invoked_alone(self, capsys):
        assert main(["explain", "table1"]) == 2
        assert "invoked alone" in capsys.readouterr().err

    def test_explains_a_question(self, capsys):
        assert main([
            "explain", "--database=superhero", "--question=1", "--workers=4",
        ]) == 0
        out = capsys.readouterr().out
        assert "== superhero_q01 (udf" in out
        assert "verdict:" in out
        assert "span tree" in out
        assert "provenance:" in out

    def test_explains_by_qid_and_pipeline(self, capsys):
        assert main([
            "explain", "--database=superhero",
            "--question=superhero_q07", "--pipeline=hqdl",
        ]) == 0
        out = capsys.readouterr().out
        assert "== superhero_q07 (hqdl" in out

    def test_documented_in_usage(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "explain" in out
        assert "regress" in out
        assert "--update-baseline" in out


class TestRegressCommand:
    def test_bad_threshold_value(self, capsys):
        assert main(["regress", "--max-ex-drop=lots"]) == 2
        err = capsys.readouterr().err
        assert "--max-ex-drop requires a number" in err

    def test_negative_threshold_rejected(self, capsys):
        assert main(["regress", "--max-token-growth=-1"]) == 2
        assert "--max-token-growth must be >= 0" in capsys.readouterr().err

    def test_update_baseline_takes_no_value(self, capsys):
        assert main(["regress", "--update-baseline=yes"]) == 2
        assert "--update-baseline takes no value" in capsys.readouterr().err

    def test_ledger_and_baseline_require_values(self, capsys):
        assert main(["regress", "--ledger="]) == 2
        assert "--ledger requires a file path" in capsys.readouterr().err
        assert main(["regress", "--baseline="]) == 2
        assert "--baseline requires a file path" in capsys.readouterr().err

    def test_must_be_invoked_alone(self, capsys):
        assert main(["regress", "explain"]) == 2
        assert "invoked alone" in capsys.readouterr().err

    def test_end_to_end_gate(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["regress", "--update-baseline"]) == 0
        out = capsys.readouterr().out
        assert "baseline updated" in out
        assert (tmp_path / "BENCH_ledger.sqlite").exists()
        assert (tmp_path / "baselines" / "regress_baseline.json").exists()
        assert main(["regress"]) == 0
        assert "regression check: PASS" in capsys.readouterr().out


class TestServeTargets:
    def test_bad_seed_value(self, capsys):
        assert main(["loadtest", "--seed=abc"]) == 2
        err = capsys.readouterr().err
        assert "--seed requires an integer" in err

    def test_negative_seed_rejected(self, capsys):
        assert main(["loadtest", "--seed=-1"]) == 2
        assert "--seed must be >= 0" in capsys.readouterr().err

    def test_bad_horizon_value(self, capsys):
        assert main(["serve", "--horizon=soon"]) == 2
        assert "--horizon requires a number" in capsys.readouterr().err

    def test_nonpositive_horizon_rejected(self, capsys):
        assert main(["serve", "--horizon=0"]) == 2
        assert "--horizon must be > 0" in capsys.readouterr().err

    def test_serve_targets_excluded_from_all(self):
        from repro.harness.__main__ import _EXCLUDED_FROM_ALL, _GENERATORS

        for target in ("serve", "loadtest"):
            assert target in _GENERATORS
            assert target in _EXCLUDED_FROM_ALL

    def test_serve_prints_a_demo_run(self, capsys):
        assert main(["serve", "--horizon=40"]) == 0
        out = capsys.readouterr().out
        assert "Query server demo run" in out
        assert "accounting OK" in out
        assert "interactive" in out and "batch" in out

    def test_loadtest_writes_bench_serve(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["loadtest", "--horizon=40"]) == 0
        out = capsys.readouterr().out
        assert "Serving load test" in out
        assert "also written to BENCH_serve.json" in out
        assert (tmp_path / "BENCH_serve.json").exists()

    def test_serve_flags_documented_in_usage(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "--seed=N" in out
        assert "--horizon=SECONDS" in out


class TestObservabilityCLI:
    def test_bad_window_value(self, capsys):
        assert main(["serve", "--window=wide"]) == 2
        err = capsys.readouterr().err
        assert "--window requires a number" in err
        assert "usage:" in err

    def test_nonpositive_window_rejected(self, capsys):
        for bad in ("0", "-5"):
            assert main(["loadtest", f"--window={bad}"]) == 2
            assert "--window must be > 0" in capsys.readouterr().err

    def test_window_documented_in_usage(self, capsys):
        assert main(["--help"]) == 0
        assert "--window=SECONDS" in capsys.readouterr().out

    def test_dash_excluded_from_all(self):
        from repro.harness.__main__ import (
            _EXCLUDED_FROM_ALL, _FLAG_TARGETS, _GENERATORS,
        )

        assert "dash" in _GENERATORS
        assert "dash" in _EXCLUDED_FROM_ALL
        assert "window" in _FLAG_TARGETS["dash"]
        assert "window" in _FLAG_TARGETS["serve"]
        assert "window" in _FLAG_TARGETS["loadtest"]

    def test_dash_renders_the_dashboard(self, capsys):
        assert main(["dash", "--horizon=40", "--window=10"]) == 0
        out = capsys.readouterr().out
        assert "Serving dashboard" in out
        assert "10s windows" in out
        assert "SLO error budgets" in out
        assert "Flight recorder" in out

    def test_serve_reports_slo_budgets(self, capsys):
        assert main(["serve", "--horizon=40"]) == 0
        out = capsys.readouterr().out
        assert "SLO error budgets" in out
        assert "availability" in out

    def test_loadtest_writes_slo_artifacts(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["loadtest", "--horizon=40"]) == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
        assert "also written to BENCH_slo.json" in out
        assert (tmp_path / "BENCH_slo.json").exists()


class TestBenchCacheTarget:
    def test_bench_cache_writes_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "bench-cache", "--databases=superhero",
            "--cache-dir=" + str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "Call planning & persistent cache" in out
        assert "byte-identical planned run: yes" in out
        assert "warm rerun zero new calls: yes" in out
        assert (tmp_path / "BENCH_cache.json").exists()
        assert (tmp_path / "cache" / "superhero.sqlite").exists()

    def test_bench_cache_excluded_from_all(self):
        from repro.harness.__main__ import _EXCLUDED_FROM_ALL, _GENERATORS

        assert "bench-cache" in _GENERATORS
        assert "bench-cache" in _EXCLUDED_FROM_ALL


class TestBatchingFlags:
    def test_bad_batch_window_value(self, capsys):
        assert main(["loadtest", "--batch-window=soon"]) == 2
        err = capsys.readouterr().err
        assert "--batch-window requires a number" in err
        assert "usage:" in err

    def test_nonpositive_batch_window_rejected(self, capsys):
        for bad in ("0", "-2"):
            assert main(["serve", f"--batch-window={bad}"]) == 2
            assert "--batch-window must be > 0" in capsys.readouterr().err

    def test_bad_max_batch_value(self, capsys):
        assert main(["dash", "--max-batch=lots"]) == 2
        assert "--max-batch requires an integer" in capsys.readouterr().err

    def test_nonpositive_max_batch_rejected(self, capsys):
        assert main(["loadtest", "--max-batch=0"]) == 2
        assert "--max-batch must be >= 1" in capsys.readouterr().err

    def test_bad_batching_value(self, capsys):
        assert main(["loadtest", "--batching=maybe"]) == 2
        err = capsys.readouterr().err
        assert "--batching must be 'on' or 'off'" in err
        assert "usage:" in err

    def test_flags_documented_in_usage(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "--batching=on|off" in out
        assert "--batch-window=SECONDS" in out
        assert "--max-batch=N" in out

    def test_all_serve_targets_accept_the_flags(self):
        from repro.harness.__main__ import _FLAG_TARGETS

        for target in ("serve", "loadtest", "dash"):
            for option in ("batch_window", "max_batch", "batching"):
                assert option in _FLAG_TARGETS[target]

    def test_serve_demo_reports_batching(self, capsys):
        assert main(["serve", "--horizon=40"]) == 0
        out = capsys.readouterr().out
        assert "batching: window 2s" in out

    def test_batching_off_restores_the_classic_demo(self, capsys):
        assert main(["serve", "--horizon=40", "--batching=off"]) == 0
        out = capsys.readouterr().out
        assert "Query server demo run" in out
        assert "batching: window" not in out


class TestTracingFlags:
    def test_bad_tracing_value(self, capsys):
        assert main(["loadtest", "--tracing=maybe"]) == 2
        err = capsys.readouterr().err
        assert "--tracing must be 'on' or 'off'" in err
        assert "usage:" in err

    def test_bad_trace_sample_value(self, capsys):
        assert main(["dash", "--trace-sample=few"]) == 2
        err = capsys.readouterr().err
        assert "--trace-sample requires an integer" in err
        assert "usage:" in err

    def test_negative_trace_sample_rejected(self, capsys):
        assert main(["serve", "--trace-sample=-1"]) == 2
        assert "--trace-sample must be >= 0" in capsys.readouterr().err

    def test_flags_documented_in_usage(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "--tracing=on|off" in out
        assert "--trace-sample=K" in out

    def test_all_serve_targets_accept_the_flags(self):
        from repro.harness.__main__ import _FLAG_TARGETS

        for target in ("serve", "loadtest", "dash"):
            for option in ("tracing", "trace_sample"):
                assert option in _FLAG_TARGETS[target]

    def test_serve_reports_tracing_summary(self, capsys):
        assert main(["serve", "--horizon=40", "--tracing=on"]) == 0
        out = capsys.readouterr().out
        assert "Request tracing: kept" in out
        assert "worst unaccounted share 0.00%" in out

    def test_tracing_off_by_default(self, capsys):
        assert main(["serve", "--horizon=40"]) == 0
        assert "Request tracing:" not in capsys.readouterr().out

    def test_loadtest_tracing_writes_trace_artifacts(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["loadtest", "--horizon=40", "--tracing=on"]) == 0
        out = capsys.readouterr().out
        assert "Request tracing (tail sampler" in out
        assert "attributes 100% of offer-to-finish time" in out
        assert (tmp_path / "BENCH_serve_traces.json").exists()
        assert (tmp_path / "BENCH_serve_trace_spans.jsonl").exists()
        assert (tmp_path / "BENCH_serve_trace_chrome.json").exists()

    def test_dash_tracing_renders_slowest_traces_panel(self, capsys):
        assert main(["dash", "--horizon=40", "--tracing=on"]) == 0
        out = capsys.readouterr().out
        assert "Slowest sampled traces" in out

    def test_dash_without_tracing_has_no_panel(self, capsys):
        assert main(["dash", "--horizon=40"]) == 0
        assert "Slowest sampled traces" not in capsys.readouterr().out


class TestExplainRequestCommand:
    def test_requires_request(self, capsys):
        assert main(["explain-request"]) == 2
        err = capsys.readouterr().err
        assert "explain-request requires --request=N" in err
        assert "usage:" in err

    def test_bad_request_value(self, capsys):
        assert main(["explain-request", "--request=first"]) == 2
        assert "--request requires an integer" in capsys.readouterr().err

    def test_negative_request_rejected(self, capsys):
        assert main(["explain-request", "--request=-3"]) == 2
        assert "--request must be >= 0" in capsys.readouterr().err

    def test_bad_multiplier_value(self, capsys):
        assert main([
            "explain-request", "--request=1", "--multiplier=heavy",
        ]) == 2
        assert "--multiplier requires a number" in capsys.readouterr().err

    def test_nonpositive_multiplier_rejected(self, capsys):
        assert main(["explain-request", "--request=1", "--multiplier=0"]) == 2
        assert "--multiplier must be > 0" in capsys.readouterr().err

    def test_unknown_request_id_reports_the_offered_range(self, capsys):
        assert main([
            "explain-request", "--request=99999", "--horizon=40",
        ]) == 2
        err = capsys.readouterr().err
        assert "no request 99999" in err
        assert "request ids" in err

    def test_must_be_invoked_alone(self, capsys):
        assert main(["explain-request", "table1"]) == 2
        assert "invoked alone" in capsys.readouterr().err

    def test_explains_a_request_end_to_end(self, capsys):
        assert main([
            "explain-request", "--request=3", "--horizon=40",
            "--batching=off",
        ]) == 0
        out = capsys.readouterr().out
        assert "== request 3 (trace t000003)" in out
        assert "span tree (virtual time):" in out
        assert "serve:request" in out
        assert "Stage attribution" in out
        assert "0.000000s unaccounted" in out
        assert "tail sampler:" in out

    def test_explains_a_batched_request_with_waves(self, capsys):
        assert main([
            "explain-request", "--request=3", "--horizon=40",
            "--multiplier=4",
        ]) == 0
        out = capsys.readouterr().out
        assert "serve:batch.wait" in out or "serve:service" in out
        assert "Stage attribution" in out

    def test_documented_in_usage(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "explain-request --request=N" in out
