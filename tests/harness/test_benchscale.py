"""Tests for the rows-vs-makespan scaling bench (`repro.harness.benchscale`)."""

import json

import pytest

from repro.errors import ReproError
from repro.harness.benchscale import (
    BENCH_QUESTION_IDS,
    format_scale_report,
    measure_scale,
    scales_up_to,
    write_scale_json,
)


class TestScalesUpTo:
    def test_caps_the_default_ladder(self):
        assert scales_up_to(1) == (1,)
        assert scales_up_to(10) == (1, 10)
        assert scales_up_to(100) == (1, 10, 100)

    def test_appends_a_nonstandard_rung(self):
        assert scales_up_to(5) == (1, 5)
        assert scales_up_to(42) == (1, 10, 42)

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError, match="scale must be >= 1"):
            scales_up_to(0)


class TestMeasureScale:
    @pytest.fixture(scope="class")
    def payload(self):
        return measure_scale(scales=(1,))

    def test_payload_shape(self, payload):
        assert payload["bench"] == "scale"
        assert payload["question_ids"] == list(BENCH_QUESTION_IDS)
        entry = payload["scales"]["1"]
        assert entry["scale"] == 1
        assert entry["original_rows"] > 0
        assert entry["curated_rows"] > 0
        for pipeline in ("udf", "hqdl"):
            record = entry["pipelines"][pipeline]
            assert record["makespan_seconds"] > 0
            assert record["llm_calls"] > 0
            assert record["stages"], "per-stage breakdown must be present"

    def test_wall_clock_speedups_recorded_and_identical(self, payload):
        wall = payload["scales"]["1"]["wall"]
        assert wall["identical"] is True
        for key in ("pre_seconds", "post_seconds", "post_processes_seconds"):
            assert wall[key] > 0
        assert wall["speedup"] is not None
        assert wall["speedup_processes"] is not None

    def test_covers_all_four_swan_worlds(self, payload):
        from repro.swan.benchmark import DATABASE_ORDER

        worlds = payload["worlds"]
        assert set(worlds) == set(DATABASE_ORDER)
        for database, entry in worlds.items():
            assert len(entry["question_ids"]) == 3
            assert all(q.startswith(database) for q in entry["question_ids"])
            rung = entry["scales"]["1"]
            assert rung["curated_rows"] > 0
            for pipeline in ("udf", "hqdl"):
                record = rung["pipelines"][pipeline]
                assert record["makespan_seconds"] > 0
                assert record["llm_calls"] > 0

    def test_world_rungs_respect_the_cap(self, payload):
        from repro.harness.benchscale import WORLD_SCALE_CAP

        assert payload["world_scale_cap"] == WORLD_SCALE_CAP
        for entry in payload["worlds"].values():
            assert all(
                int(scale) <= WORLD_SCALE_CAP for scale in entry["scales"]
            )

    def test_report_renders(self, payload):
        text = format_scale_report(payload)
        assert "Rows vs makespan" in text
        assert "1x" in text
        assert "All four SWAN worlds" in text
        assert "european_football" in text

    def test_write_scale_json(self, tmp_path):
        path, payload = write_scale_json(
            tmp_path / "BENCH_scale.json", scales=(1,)
        )
        assert path.exists()
        assert json.loads(path.read_text()) == payload
