"""Tests for the experiment runners (restricted to one database for speed)."""

import pytest

from repro.harness.runner import GoldResults, run_hqdl, run_udf


@pytest.fixture(scope="module")
def gold(swan):
    return GoldResults(swan)


class TestGoldResults:
    def test_covers_all_questions(self, swan, gold):
        for question in swan.questions:
            result = gold.expected(question.qid)
            assert result.columns is not None

    def test_unknown_qid(self, gold):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            gold.expected("nope")


class TestRunHQDL:
    def test_perfect_model_gets_full_marks(self, swan, gold):
        run = run_hqdl(swan, "perfect", 0, databases=["superhero"], gold=gold)
        assert run.ex_by_db["superhero"] == 1.0
        assert run.f1_by_db["superhero"] == 1.0
        assert run.overall_ex == 1.0
        assert len(run.outcomes) == 30

    def test_real_model_is_imperfect_but_metered(self, swan, gold):
        run = run_hqdl(swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold)
        assert 0.0 < run.ex_by_db["superhero"] < 1.0
        assert 0.0 < run.f1_by_db["superhero"] < 1.0
        assert run.usage.calls == len(
            swan.world("superhero").truth["superhero_info"]
        )

    def test_generation_reused_across_questions(self, swan, gold):
        """30 questions, but generation calls = number of keys (once)."""
        run = run_hqdl(swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold)
        keys = len(swan.world("superhero").truth["superhero_info"])
        assert run.usage.calls == keys

    def test_average_f1_over_databases(self, swan, gold):
        run = run_hqdl(
            swan, "perfect", 0, databases=["superhero", "formula_1"], gold=gold
        )
        assert run.average_f1 == 1.0
        assert len(run.f1_by_db) == 2


class TestRunUDF:
    def test_perfect_model_gets_full_marks(self, swan, gold):
        run = run_udf(swan, "perfect", 0, databases=["superhero"], gold=gold)
        assert run.ex_by_db["superhero"] == 1.0

    def test_cache_stats_collected(self, swan, gold):
        run = run_udf(swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold)
        assert run.cache_misses > 0
        assert run.usage.calls == run.cache_misses

    def test_pushdown_flag_changes_cost(self, swan, gold):
        with_pd = run_udf(
            swan, "perfect", 0, databases=["formula_1"], gold=gold, pushdown=True
        )
        without_pd = run_udf(
            swan, "perfect", 0, databases=["formula_1"], gold=gold, pushdown=False
        )
        assert without_pd.usage.input_tokens > with_pd.usage.input_tokens

    def test_batch_size_changes_call_count(self, swan, gold):
        small = run_udf(
            swan, "perfect", 0, databases=["superhero"], gold=gold, batch_size=1
        )
        large = run_udf(
            swan, "perfect", 0, databases=["superhero"], gold=gold, batch_size=20
        )
        assert small.usage.calls > large.usage.calls
