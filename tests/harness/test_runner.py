"""Tests for the experiment runners (restricted to one database for speed)."""

import pytest

from repro.harness.runner import GoldResults, run_hqdl, run_udf


@pytest.fixture(scope="module")
def gold(swan):
    return GoldResults(swan)


class TestGoldResults:
    def test_covers_all_questions(self, swan, gold):
        for question in swan.questions:
            result = gold.expected(question.qid)
            assert result.columns is not None

    def test_unknown_qid(self, gold):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            gold.expected("nope")


class TestRunHQDL:
    def test_perfect_model_gets_full_marks(self, swan, gold):
        run = run_hqdl(swan, "perfect", 0, databases=["superhero"], gold=gold)
        assert run.ex_by_db["superhero"] == 1.0
        assert run.f1_by_db["superhero"] == 1.0
        assert run.overall_ex == 1.0
        assert len(run.outcomes) == 30

    def test_real_model_is_imperfect_but_metered(self, swan, gold):
        run = run_hqdl(swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold)
        assert 0.0 < run.ex_by_db["superhero"] < 1.0
        assert 0.0 < run.f1_by_db["superhero"] < 1.0
        assert run.usage.calls == len(
            swan.world("superhero").truth["superhero_info"]
        )

    def test_generation_reused_across_questions(self, swan, gold):
        """30 questions, but generation calls = number of keys (once)."""
        run = run_hqdl(swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold)
        keys = len(swan.world("superhero").truth["superhero_info"])
        assert run.usage.calls == keys

    def test_average_f1_over_databases(self, swan, gold):
        run = run_hqdl(
            swan, "perfect", 0, databases=["superhero", "formula_1"], gold=gold
        )
        assert run.average_f1 == 1.0
        assert len(run.f1_by_db) == 2


class TestRunUDF:
    def test_perfect_model_gets_full_marks(self, swan, gold):
        run = run_udf(swan, "perfect", 0, databases=["superhero"], gold=gold)
        assert run.ex_by_db["superhero"] == 1.0

    def test_cache_stats_collected(self, swan, gold):
        run = run_udf(swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold)
        assert run.cache_misses > 0
        assert run.usage.calls == run.cache_misses

    def test_pushdown_flag_changes_cost(self, swan, gold):
        with_pd = run_udf(
            swan, "perfect", 0, databases=["formula_1"], gold=gold, pushdown=True
        )
        without_pd = run_udf(
            swan, "perfect", 0, databases=["formula_1"], gold=gold, pushdown=False
        )
        assert without_pd.usage.input_tokens > with_pd.usage.input_tokens

    def test_batch_size_changes_call_count(self, swan, gold):
        small = run_udf(
            swan, "perfect", 0, databases=["superhero"], gold=gold, batch_size=1
        )
        large = run_udf(
            swan, "perfect", 0, databases=["superhero"], gold=gold, batch_size=20
        )
        assert small.usage.calls > large.usage.calls


class TestDatabaseValidation:
    """`databases=` names are validated up front with a clear error."""

    def test_run_udf_unknown_database(self, swan, gold):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="'nope'.*superhero"):
            run_udf(swan, "perfect", 0, databases=["nope"], gold=gold)

    def test_run_hqdl_unknown_database_lists_valid_names(self, swan, gold):
        from repro.errors import ReproError

        with pytest.raises(ReproError) as excinfo:
            run_hqdl(swan, "perfect", 0, databases=["superhero", "typo"], gold=gold)
        message = str(excinfo.value)
        assert "'typo'" in message
        for name in swan.database_names():
            assert name in message

    def test_valid_names_still_accepted(self, swan, gold):
        run = run_udf(swan, "perfect", 0, databases=["superhero"], gold=gold)
        assert run.ex_by_db["superhero"] == 1.0


class TestParallelRunners:
    """db_workers / workers change wall-clock only, never results."""

    def test_run_udf_parallel_matches_sequential(self, swan, gold):
        sequential = run_udf(
            swan, "gpt-3.5-turbo", 0,
            databases=["superhero", "california_schools"], gold=gold,
        )
        parallel = run_udf(
            swan, "gpt-3.5-turbo", 0,
            databases=["superhero", "california_schools"], gold=gold,
            workers=8, db_workers=2,
        )
        assert parallel.usage == sequential.usage
        assert parallel.ex_by_db == sequential.ex_by_db
        assert parallel.cache_hits == sequential.cache_hits
        assert parallel.cache_misses == sequential.cache_misses
        assert [o.qid for o in parallel.outcomes] == [
            o.qid for o in sequential.outcomes
        ]

    def test_run_hqdl_parallel_matches_sequential(self, swan, gold):
        sequential = run_hqdl(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold
        )
        parallel = run_hqdl(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold,
            workers=8, db_workers=2,
        )
        assert parallel.usage == sequential.usage
        assert parallel.f1_by_db == sequential.f1_by_db
        assert parallel.ex_by_db == sequential.ex_by_db
        for name, generation in sequential.generations.items():
            other = parallel.generations[name]
            for table_name, table in generation.tables.items():
                assert other.tables[table_name].rows == table.rows

    def test_db_workers_validation(self, swan, gold):
        with pytest.raises(ValueError):
            run_udf(
                swan, "perfect", 0, databases=["superhero"], gold=gold,
                db_workers=0,
            )
