"""Run-level planning and persistent caching through the harness runners.

The acceptance bar for the planner is strict: a planned run in
``prompt`` mode must be **byte-identical** to the unplanned seed path —
same answers, same EX, same Usage totals — on the full SWAN benchmark,
at one worker and at eight.  These tests pin that bar.
"""

import pytest

from repro.harness.runner import GoldResults, run_hqdl, run_udf
from repro.plan import AdaptiveBatchPolicy


@pytest.fixture(scope="module")
def gold(swan):
    return GoldResults(swan)


def _assert_same_run(a, b, *, compare_usage=True):
    """Question-by-question identity of two UDF runs."""
    if compare_usage:
        assert a.usage == b.usage
    assert a.ex_by_db == b.ex_by_db
    assert len(a.outcomes) == len(b.outcomes)
    for x, y in zip(a.outcomes, b.outcomes):
        assert x.qid == y.qid
        assert x.correct == y.correct
        assert x.actual_rows == y.actual_rows
        assert x.error == y.error


class TestPromptModeByteIdentity:
    @pytest.mark.parametrize("workers", [1, 8])
    def test_full_swan_identical_to_unplanned(self, swan, gold, workers):
        plain = run_udf(
            swan, "gpt-3.5-turbo", 0, gold=gold, workers=workers
        )
        planned = run_udf(
            swan, "gpt-3.5-turbo", 0, gold=gold, workers=workers,
            plan="prompt",
        )
        _assert_same_run(plain, planned)
        # the plan record is reported per database
        assert set(planned.plan_stats) == set(planned.ex_by_db)
        for stats in planned.plan_stats.values():
            assert stats["mode"] == "prompt"
            assert stats["dedup_pct"] > 0

    def test_invalid_plan_rejected(self, swan, gold):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_udf(swan, "perfect", 0, gold=gold, plan="eager")


class TestPersistentCacheRuns:
    def test_warm_rerun_issues_zero_new_calls(self, swan, gold, tmp_path):
        cold = run_udf(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold,
            plan="prompt", cache_dir=tmp_path,
        )
        warm = run_udf(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold,
            plan="prompt", cache_dir=tmp_path,
        )
        assert cold.usage.calls > 0
        assert warm.usage.calls == 0
        assert warm.usage.input_tokens == 0
        _assert_same_run(cold, warm, compare_usage=False)
        assert warm.persistent["superhero"]["stores"] == 0
        assert warm.persistent["superhero"]["hits"] > 0
        assert cold.persistent["superhero"]["hits"] == 0

    def test_cold_cached_run_identical_to_plain(self, swan, gold, tmp_path):
        plain = run_udf(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold
        )
        cached = run_udf(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold,
            cache_dir=tmp_path,
        )
        _assert_same_run(plain, cached)

    def test_hqdl_warm_rerun_issues_zero_new_calls(self, swan, gold, tmp_path):
        cold = run_hqdl(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold,
            cache_dir=tmp_path,
        )
        warm = run_hqdl(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold,
            cache_dir=tmp_path,
        )
        assert cold.usage.calls > 0
        assert warm.usage.calls == 0
        assert warm.ex_by_db == cold.ex_by_db
        assert warm.persistent["superhero"]["hits"] > 0


class TestPairsModeSavings:
    def test_fewer_calls_and_tokens_than_seed(self, swan, gold):
        plain = run_udf(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold
        )
        pairs = run_udf(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold,
            plan="pairs",
            batch_policy=AdaptiveBatchPolicy.for_model("gpt-3.5-turbo", 0),
        )
        assert pairs.usage.calls < plain.usage.calls
        assert pairs.usage.input_tokens < plain.usage.input_tokens
        stats = pairs.plan_stats["superhero"]
        assert stats["mode"] == "pairs"
        assert stats["keys_stored"] > 0
        # answers may drift within model noise, not collapse
        assert abs(
            pairs.ex_by_db["superhero"] - plain.ex_by_db["superhero"]
        ) <= 0.10


class TestHQDLCallOrder:
    def test_lpt_order_results_identical(self, swan, gold):
        collection = run_hqdl(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold
        )
        lpt = run_hqdl(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"], gold=gold,
            call_order="lpt",
        )
        assert lpt.ex_by_db == collection.ex_by_db
        assert lpt.usage == collection.usage

    def test_invalid_call_order_rejected(self, swan, gold):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_hqdl(swan, "perfect", 0, gold=gold, call_order="random")
