"""Tests for the grid sweep and CSV export."""

import csv

import pytest

from repro.harness.runner import GoldResults
from repro.harness.sweep import SweepRecord, run_sweep, write_csv


@pytest.fixture(scope="module")
def records(swan):
    gold = GoldResults(swan)
    return run_sweep(
        swan,
        hqdl_configs=[("perfect", 0)],
        udf_configs=[("perfect", 0)],
        gold=gold,
    )


class TestRunSweep:
    def test_one_record_per_cell(self, records, swan):
        databases = len(swan.database_names())
        assert len(records) == 2 * databases  # hqdl + udf

    def test_perfect_model_scores_one(self, records):
        assert all(r.execution_accuracy == 1.0 for r in records)

    def test_hqdl_carries_factuality_udf_does_not(self, records):
        hqdl = [r for r in records if r.method == "hqdl"]
        udf = [r for r in records if r.method == "udf"]
        assert all(r.factuality_f1 == 1.0 for r in hqdl)
        assert all(r.factuality_f1 is None for r in udf)

    def test_tokens_positive(self, records):
        assert all(r.input_tokens > 0 and r.llm_calls > 0 for r in records)


class TestCsvExport:
    def test_round_trip(self, records, tmp_path):
        path = write_csv(records, tmp_path / "sweep.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(records)
        assert rows[0]["method"] == "hqdl"
        assert float(rows[0]["execution_accuracy"]) == 1.0

    def test_empty_factuality_serialized_blank(self, records, tmp_path):
        path = write_csv(records, tmp_path / "sweep.csv")
        with path.open() as handle:
            udf_rows = [r for r in csv.DictReader(handle) if r["method"] == "udf"]
        assert all(r["factuality_f1"] == "" for r in udf_rows)

    def test_creates_parent_directories(self, records, tmp_path):
        path = write_csv(records, tmp_path / "deep" / "dir" / "sweep.csv")
        assert path.exists()

    def test_as_row_rounding(self):
        record = SweepRecord(
            method="hqdl", model="m", shots=0, database="d",
            execution_accuracy=0.123456, factuality_f1=0.98765,
            input_tokens=1, output_tokens=2, llm_calls=3,
        )
        row = record.as_row()
        assert row["execution_accuracy"] == 0.1235
        assert row["factuality_f1"] == 0.9877
