"""Tests for the table generators (cheap configurations only)."""

import pytest

from repro.harness.runner import GoldResults
from repro.harness.tables import figure1, table1, table2, table3, table4, table5


@pytest.fixture(scope="module")
def gold(swan):
    return GoldResults(swan)


class TestTable1:
    def test_rows_and_text(self, swan):
        records, text = table1(swan)
        assert len(records) == 4
        assert "Rows/Table" in text
        assert "Formula One" in text

    def test_superhero_matches_paper_drop_count(self, swan):
        records, _ = table1(swan)
        superhero = [r for r in records if "hero" in str(r["database"]).lower()][0]
        assert superhero["cols_dropped"] == 11


class TestTable2:
    def test_single_cell_configuration(self, swan, gold):
        records, text = table2(
            swan, models=("gpt-4-turbo",), shots=(0, 5), gold=gold
        )
        assert len(records) == 2
        assert records[1]["overall"] >= records[0]["overall"]  # shots help
        assert "Overall" in text

    def test_improvement_column_relative_to_zero_shot(self, swan, gold):
        records, _ = table2(swan, models=("gpt-4-turbo",), shots=(0, 5), gold=gold)
        assert records[0]["improvement"] == 0.0
        assert records[1]["improvement"] == pytest.approx(
            records[1]["overall"] - records[0]["overall"]
        )


class TestTable3:
    def test_runs(self, swan, gold):
        records, text = table3(
            swan, configs=(("gpt-3.5-turbo", 0),), gold=gold
        )
        assert len(records) == 1
        assert 0.0 <= records[0]["overall"] <= 1.0
        assert "HQ UDFs" in text


class TestTable4:
    def test_f1_monotone_in_shots(self, swan, gold):
        records, _ = table4(swan, models=("gpt-3.5-turbo",), shots=(0, 5), gold=gold)
        assert records[1]["average_f1"] > records[0]["average_f1"]


class TestTable5:
    def test_udf_costs_more(self, swan, gold):
        records, text = table5(swan, gold=gold)
        hqdl = [r for r in records if r["algorithm"] == "HQDL"][0]
        udf = [r for r in records if r["algorithm"] == "HQ UDFs"][0]
        assert udf.get("input_tokens") > 0 and hqdl.get("input_tokens") > 0
        assert udf["output_tokens"] > hqdl["output_tokens"]
        assert "ratio" in text


class TestFigure1:
    def test_database_only_fails_hybrid_succeeds(self, swan):
        records, text = figure1(swan)
        db_only = [r for r in records if r["approach"] == "database-only"][0]
        hybrid = [r for r in records if r["approach"] == "hybrid"][0]
        assert not db_only["answerable"]
        assert hybrid["answerable"]
        assert hybrid["rows"] > 20
        assert "FAILS" in text
