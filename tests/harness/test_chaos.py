"""Tier-1 tests for chaos runs: fault injection over the full pipelines.

Two invariants anchor the resilience subsystem:

1. **Rate 0 is invisible.**  A chaos run with every fault rate at zero
   is byte-identical to the plain runner — same outcomes, same Usage
   totals, same cache statistics.  The resilience layer may not perturb
   the paper's numbers when nothing goes wrong.
2. **Retries recover.**  With error faults at rate 0.3 and retries on,
   the pipeline recovers >= 95% of the fault-free EX, and the
   ResilienceReport accounts for every attempt.
"""

import pytest

from repro.harness.runner import (
    GoldResults,
    chaos_sweep,
    run_hqdl,
    run_hqdl_chaos,
    run_udf,
    run_udf_chaos,
)
from repro.llm.faults import FaultPlan
from repro.llm.resilience import RetryPolicy


@pytest.fixture(scope="module")
def gold(swan):
    return GoldResults(swan)


DBS = ["superhero"]


def _outcome_key(outcome):
    return (outcome.qid, outcome.correct, outcome.error)


class TestRateZeroIsByteIdentical:
    def test_udf_chaos_rate_zero_matches_plain_run(self, swan, gold):
        plain = run_udf(
            swan, "gpt-3.5-turbo", 0, databases=DBS, gold=gold
        )
        chaos = run_udf_chaos(
            swan, "gpt-3.5-turbo", 0, fault_rate=0.0, databases=DBS, gold=gold
        )
        inner = chaos  # ChaosRun carries the UDFRun aggregates
        assert inner.ex == plain.overall_ex
        assert inner.usage == plain.usage
        assert chaos.fault_decisions > 0  # the injector did run
        assert sum(chaos.faults_injected.values()) == 0
        report = chaos.resilience.as_dict()
        assert report["retries"] == 0
        assert report["exhausted"] == 0
        assert report["degraded_rows"] == 0
        assert report["attempts"] == report["successes"]
        assert chaos.resilience.is_accounted()

    def test_udf_chaos_rate_zero_outcomes_and_cache_match(self, swan, gold):
        """Question-level results and cache statistics are identical."""
        plain = run_udf(swan, "perfect", 0, databases=DBS, gold=gold)
        # re-run through the chaos path and compare the underlying run
        from repro.harness.runner import (
            _chaos_pieces,
            build_resilient_stack,
        )

        plan, injector, report, clock, policy = _chaos_pieces(
            0.0, 0, True, None, None
        )
        chaos_run = run_udf(
            swan, "perfect", 0, databases=DBS, gold=gold,
            wrap_client=lambda model: build_resilient_stack(
                model, plan=plan, injector=injector, policy=policy,
                clock=clock, report=report,
            ),
            resilience=report,
        )
        assert [_outcome_key(o) for o in chaos_run.outcomes] == [
            _outcome_key(o) for o in plain.outcomes
        ]
        assert chaos_run.usage == plain.usage
        assert chaos_run.cache_hits == plain.cache_hits
        assert chaos_run.cache_misses == plain.cache_misses

    def test_hqdl_chaos_rate_zero_matches_plain_run(self, swan, gold):
        plain = run_hqdl(
            swan, "gpt-3.5-turbo", 0, databases=DBS, gold=gold
        )
        chaos = run_hqdl_chaos(
            swan, "gpt-3.5-turbo", 0, fault_rate=0.0, databases=DBS, gold=gold
        )
        assert chaos.ex == plain.overall_ex
        assert chaos.f1 == plain.average_f1
        assert chaos.usage == plain.usage
        assert sum(chaos.faults_injected.values()) == 0
        assert chaos.resilience.is_accounted()


class TestRetriesRecoverAccuracy:
    def test_udf_recovers_95_percent_of_baseline_ex(self, swan, gold):
        """Error faults at rate 0.3 + retries lose < 5% EX.

        corruption_share=0 keeps the plan to *retryable* faults (rate
        limits, timeouts, transients); corrupted-but-delivered
        completions are a semantic failure retries cannot see.
        """
        baseline = run_udf(swan, "perfect", 0, databases=DBS, gold=gold)
        plan = FaultPlan.uniform(0.3, seed=0, corruption_share=0.0)
        chaos = run_udf_chaos(
            swan, "perfect", 0, fault_rate=0.3, plan=plan,
            databases=DBS, gold=gold,
        )
        assert baseline.overall_ex > 0.9  # the bar is meaningful
        assert chaos.ex >= 0.95 * baseline.overall_ex
        report = chaos.resilience.as_dict()
        assert report["retries"] > 0  # faults actually fired
        assert chaos.resilience.is_accounted()

    def test_hqdl_recovers_95_percent_of_baseline_ex(self, swan, gold):
        baseline = run_hqdl(swan, "perfect", 0, databases=DBS, gold=gold)
        plan = FaultPlan.uniform(0.3, seed=0, corruption_share=0.0)
        chaos = run_hqdl_chaos(
            swan, "perfect", 0, fault_rate=0.3, plan=plan,
            databases=DBS, gold=gold,
        )
        assert chaos.ex >= 0.95 * baseline.overall_ex
        assert chaos.resilience.is_accounted()

    def test_every_attempt_is_accounted_at_every_rate(self, swan, gold):
        for rate in (0.1, 0.3):
            plan = FaultPlan.uniform(rate, seed=1)
            chaos = run_udf_chaos(
                swan, "gpt-3.5-turbo", 0, fault_rate=rate, plan=plan,
                databases=DBS, gold=gold,
            )
            report = chaos.resilience.as_dict()
            assert chaos.resilience.is_accounted(), report
            assert report["attempts"] == (
                report["successes"] + report["retries"]
                + report["exhausted"] + report["fatal"]
            )


class TestGracefulDegradation:
    def test_without_retries_failures_degrade_not_crash(self, swan, gold):
        """retries=False: exhausted attempts become NULLs, never raises."""
        plan = FaultPlan.uniform(0.3, seed=0, corruption_share=0.0)
        chaos = run_udf_chaos(
            swan, "gpt-3.5-turbo", 0, fault_rate=0.3, plan=plan,
            retries=False, databases=DBS, gold=gold,
        )
        report = chaos.resilience.as_dict()
        assert report["exhausted"] > 0
        assert report["retries"] == 0
        assert report["degraded_rows"] > 0
        assert chaos.resilience.is_accounted()

    def test_hqdl_degraded_rows_materialize_as_nulls(self, swan, gold):
        plan = FaultPlan.uniform(0.4, seed=2, corruption_share=0.0)
        chaos = run_hqdl_chaos(
            swan, "gpt-3.5-turbo", 0, fault_rate=0.4, plan=plan,
            retries=False, databases=DBS, gold=gold,
        )
        assert chaos.resilience.as_dict()["degraded_rows"] > 0
        # the run completed and produced a (degraded) score
        assert 0.0 <= chaos.ex <= 1.0


class TestChaosSweep:
    def test_sweep_covers_both_pipelines_per_rate(self, swan, gold):
        runs = chaos_sweep(
            swan, "gpt-3.5-turbo", 0, fault_rates=(0.0, 0.3),
            databases=DBS, gold=gold,
        )
        assert [(r.pipeline, r.fault_rate) for r in runs] == [
            ("udf", 0.0), ("hqdl", 0.0), ("udf", 0.3), ("hqdl", 0.3),
        ]
        assert all(r.resilience.is_accounted() for r in runs)
        records = [r.as_record() for r in runs]
        assert all("attempts" in record for record in records)

    def test_custom_policy_threads_through(self, swan, gold):
        policy = RetryPolicy(max_attempts=2, base_delay=0.1, jitter=0.0)
        chaos = run_udf_chaos(
            swan, "gpt-3.5-turbo", 0, fault_rate=0.3,
            plan=FaultPlan.uniform(0.3, corruption_share=0.0),
            policy=policy, databases=DBS, gold=gold,
        )
        assert chaos.resilience.is_accounted()
