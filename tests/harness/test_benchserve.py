"""Tests for the serving load test (`repro.harness.benchserve`)."""

import json

import pytest

from repro.harness.benchserve import (
    default_config,
    default_tenants,
    format_serve_demo,
    format_serve_report,
    measure_capacity,
    offered_rps,
    run_level,
    run_loadtest,
    write_serve_json,
)
from repro.swan.benchmark import load_benchmark_subset


class TestTenantMix:
    def test_default_mix_has_two_priority_classes(self):
        tenants = default_tenants(("superhero",))
        priorities = {t.priority for t in tenants}
        assert len(priorities) >= 2
        assert 0 in priorities, "an interactive (priority 0) class exists"

    def test_offered_rps_counts_bursts(self):
        tenants = default_tenants()
        base = sum(t.rate for t in tenants)
        assert offered_rps(tenants) > base


class TestCapacity:
    def test_probe_measures_a_positive_capacity(self):
        swan = load_benchmark_subset(1, ["superhero"])
        capacity = measure_capacity(
            swan, default_config(), default_tenants(("superhero",)),
            horizon=60.0,
        )
        assert capacity > 0


class TestLoadtest:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_loadtest(
            horizon=40.0, multipliers=(0.5, 2.0), databases=("superhero",)
        )

    def test_payload_shape(self, payload):
        assert payload["capacity_rps"] > 0
        assert [lv["multiplier"] for lv in payload["levels"]] == [0.5, 2.0]
        for level in payload["levels"]:
            assert level["accounting_ok"] is True
            assert (
                level["served"] + level["degraded"] + level["rejected"]
                == level["offered"]
            )

    def test_deadlines_bound_answered_latency(self, payload):
        limit = max(t.deadline_seconds for t in default_tenants())
        for level in payload["levels"]:
            assert level["p99"] <= limit + 1e-6
            assert level["max_latency"] <= limit + 1e-6

    def test_deterministic_across_runs(self, payload):
        again = run_loadtest(
            horizon=40.0, multipliers=(0.5, 2.0), databases=("superhero",)
        )
        assert again == payload

    def test_write_and_render(self, payload, tmp_path):
        path = write_serve_json(payload, tmp_path / "BENCH_serve.json")
        assert json.loads(path.read_text()) == payload
        text = format_serve_report(payload)
        assert "Serving load test" in text
        assert "2.00x" in text

    def test_demo_renders(self):
        swan = load_benchmark_subset(1, ["superhero"])
        tenants = default_tenants(("superhero",))
        config = default_config()
        capacity = measure_capacity(swan, config, tenants, horizon=40.0)
        report, record = run_level(
            swan, config, tenants, 2.0, capacity, horizon=40.0
        )
        text = format_serve_demo(report)
        assert "Query server demo run" in text
        assert "interactive" in text
        assert record["offered"] == report.offered


class TestBatchingComparison:
    @pytest.fixture(scope="class")
    def payloads(self):
        from repro.serve.batcher import BatchingConfig

        on = run_loadtest(
            horizon=40.0, multipliers=(0.5, 2.0), databases=("superhero",),
            batching=BatchingConfig(),
        )
        off = run_loadtest(
            horizon=40.0, multipliers=(0.5, 2.0), databases=("superhero",)
        )
        return on, off

    def test_levels_carry_the_batching_keys(self, payloads):
        on, _ = payloads
        assert on["batch_window"] == 2.0
        assert on["max_batch"] is None
        for level in on["levels"]:
            assert level["tokens_per_answer"] >= 0
            assert 0.0 <= level["batch_occupancy"] <= 1.0
            assert level["coalesced_calls"] >= 0
            arm = level["batching"]
            assert arm["accounting_ok"] is True
            assert arm["paid_calls"] <= arm["formed_calls"]
            assert arm["llm_calls"] <= level["llm_calls"]

    def test_off_payload_is_the_on_payload_minus_batching(self, payloads):
        """The unbatched arm is untouched by running the batched one."""
        on, off = payloads
        stripped = {
            k: v for k, v in on.items()
            if k not in ("batch_window", "max_batch")
        }
        stripped["levels"] = [
            {
                k: v for k, v in level.items()
                if k not in (
                    "tokens_per_answer", "batch_occupancy",
                    "coalesced_calls", "batching",
                )
            }
            for level in on["levels"]
        ]
        assert stripped == off

    def test_batched_arm_stays_inside_deadlines(self, payloads):
        on, _ = payloads
        limit = max(t.deadline_seconds for t in default_tenants())
        for level in on["levels"]:
            assert level["batching"]["p99"] <= limit + 1e-6

    def test_report_renders_the_comparison_table(self, payloads):
        on, off = payloads
        text = format_serve_report(on)
        assert "Cross-request batching (window=2s)" in text
        assert "saved%" in text
        assert "Cross-request batching" not in format_serve_report(off)

    def test_slo_payload_unchanged_by_batching(self):
        from repro.harness.benchserve import run_slo_loadtest
        from repro.serve.batcher import BatchingConfig

        _, slo_on = run_slo_loadtest(
            horizon=30.0, multipliers=(2.0,), databases=("superhero",),
            batching=BatchingConfig(),
        )
        _, slo_off = run_slo_loadtest(
            horizon=30.0, multipliers=(2.0,), databases=("superhero",)
        )
        assert slo_on == slo_off
