"""Tests for the bench-cache payload and report formatting.

The end-to-end path (four real runs + BENCH_cache.json on disk) is
exercised by the CLI test; these tests cover the pure pieces cheaply.
"""

from repro.eval.execution import ExecutionOutcome
from repro.harness.benchcache import _same_results, format_cache_report
from repro.harness.runner import UDFRun
from repro.llm.usage import Usage


def _run(rows, *, calls=5):
    run = UDFRun(model="m", shots=0, batch_size=5, pushdown=True)
    run.usage = Usage(100, 10, calls)
    run.ex_by_db = {"superhero": 0.5}
    run.outcomes = [
        ExecutionOutcome(
            qid="q1", database="superhero", correct=True,
            expected_rows=rows, actual_rows=rows,
        )
    ]
    return run


def _entry(calls, tokens):
    return {
        "llm_calls": calls, "input_tokens": tokens, "output_tokens": 0,
        "ex": 0.1, "ex_by_db": {"superhero": 0.1},
        "sequential_seconds": 10.0, "parallel_seconds": 3.0,
    }


def _payload():
    return {
        "model": "gpt-3.5-turbo", "shots": 0, "batch_size": 5, "workers": 4,
        "databases": ["superhero"],
        "baseline": _entry(100, 1000),
        "planned_prompt": {
            **_entry(100, 1000),
            "byte_identical_to_baseline": True,
            "plan_stats": {"superhero": {"dedup_pct": 37.5}},
            "persistent": {},
        },
        "warm": {
            **_entry(0, 0), "zero_new_llm_calls": True,
            "persistent": {}, "results_match_cold": True,
        },
        "planned_pairs": {
            **_entry(80, 800),
            "adaptive_batch": {"batch_size": 6},
            "plan_stats": {"superhero": {"dedup_pct": 42.9}},
            "calls_saved_pct": 20.0, "tokens_saved_pct": 20.0,
            "ex_delta": 0.0,
        },
        "planner_stages": [],
    }


class TestSameResults:
    def test_identical_runs_match(self):
        assert _same_results(_run(1), _run(1))

    def test_usage_is_ignored(self):
        # the warm run pays nothing; only answers are compared
        assert _same_results(_run(1, calls=5), _run(1, calls=0))

    def test_different_rows_differ(self):
        assert not _same_results(_run(1), _run(2))


class TestFormatCacheReport:
    def test_report_names_all_four_runs(self):
        text = format_cache_report(_payload(), "BENCH_cache.json")
        for label in ("baseline", "prompt mode", "warm rerun", "pairs"):
            assert label in text
        assert "byte-identical planned run: yes" in text
        assert "warm rerun zero new calls: yes" in text
        assert "20.0% calls" in text
        assert "superhero: 42.9%" in text

    def test_report_flags_violations_loudly(self):
        payload = _payload()
        payload["planned_prompt"]["byte_identical_to_baseline"] = False
        payload["warm"]["zero_new_llm_calls"] = False
        text = format_cache_report(payload, "BENCH_cache.json")
        assert "byte-identical planned run: NO" in text
        assert "warm rerun zero new calls: NO" in text
