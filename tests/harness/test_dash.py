"""Tests for the console serving dashboard."""

import pytest

from repro.harness.dash import MAX_TABLE_WINDOWS, format_dash, run_dash, sparkline


class TestSparkline:
    def test_scales_to_peak(self):
        line = sparkline([0, 1, 2, 4])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_all_zero_is_flat(self):
        assert sparkline([0, 0, 0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_values_render_monotone_glyphs(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert list(line) == sorted(line)


class TestRunDash:
    @pytest.fixture(scope="class")
    def dash(self):
        return run_dash(horizon=40.0, databases=("superhero",))

    def test_payload_shape(self, dash):
        payload, _ = dash
        assert payload["multiplier"] == 2.0
        assert payload["windows"]
        assert set(payload["budgets"]) == {"availability", "latency"}
        assert payload["serve"]["accounting_ok"]

    def test_text_has_dashboard_sections(self, dash):
        _, text = dash
        assert "Serving dashboard" in text
        assert "offered/s" in text
        assert "SLO error budgets" in text
        assert "Flight recorder" in text
        assert any(block in text for block in "▁▂▃▄▅▆▇█")

    def test_deterministic(self, dash):
        payload, text = dash
        payload2, text2 = run_dash(horizon=40.0, databases=("superhero",))
        assert text == text2
        assert payload == payload2

    def test_long_runs_elide_old_windows(self, dash):
        payload, _ = dash
        rows = [
            dict(row) for row in payload["windows"]
        ] * (MAX_TABLE_WINDOWS // len(payload["windows"]) + 2)
        for i, row in enumerate(rows):
            row["window"] = i
        text = format_dash({**payload, "windows": rows})
        assert "earlier windows elided" in text


class TestBatchedDash:
    @pytest.fixture(scope="class")
    def dash(self):
        from repro.serve.batcher import BatchingConfig

        return run_dash(
            horizon=40.0, databases=("superhero",),
            batching=BatchingConfig(),
        )

    def test_occupancy_series_aligns_with_windows(self, dash):
        payload, _ = dash
        assert len(payload["batch_occupancy_windows"]) == len(
            payload["windows"]
        )
        assert all(v >= 0 for v in payload["batch_occupancy_windows"])

    def test_panel_renders(self, dash):
        _, text = dash
        assert "batch occ" in text
        assert "Cross-request batching:" in text
        assert "fan-out tokens saved" in text

    def test_unbatched_dash_has_no_panel(self):
        payload, text = run_dash(horizon=40.0, databases=("superhero",))
        assert "batch_occupancy_windows" not in payload
        assert "batch occ" not in text
        assert "Cross-request batching:" not in text


class TestTraceBar:
    def test_exact_width_and_chronological_glyphs(self):
        from repro.harness.dash import trace_bar

        bar = trace_bar(
            {"serve:queue": 6.0, "serve:llm": 3.0, "llm:backoff": 1.0},
            10.0, width=20,
        )
        assert len(bar) == 20
        assert bar == "q" * 12 + "#" * 6 + "b" * 2

    def test_zero_total_renders_placeholder(self):
        from repro.harness.dash import trace_bar

        assert trace_bar({}, 0.0, width=8) == "·" * 8


class TestTracedDash:
    @pytest.fixture(scope="class")
    def dash(self):
        from repro.obs.sampler import TailSampler

        return run_dash(
            horizon=40.0, databases=("superhero",),
            sampler=TailSampler(),
        )

    def test_panel_payload_shape(self, dash):
        payload, _ = dash
        panel = payload["traces"]
        assert panel["sampler"]["total"] == payload["serve"]["offered"]
        assert panel["slowest"]
        latencies = [t["latency"] for t in panel["slowest"]]
        assert latencies == sorted(latencies, reverse=True)
        for trace in panel["slowest"]:
            assert trace["stages"]

    def test_panel_renders_with_bars(self, dash):
        _, text = dash
        assert "Slowest sampled traces" in text
        assert "q=queue" in text

    def test_deterministic(self, dash):
        from repro.obs.sampler import TailSampler

        payload, text = dash
        payload2, text2 = run_dash(
            horizon=40.0, databases=("superhero",),
            sampler=TailSampler(),
        )
        assert payload == payload2
        assert text == text2

    def test_untraced_dash_has_no_panel(self):
        payload, text = run_dash(horizon=40.0, databases=("superhero",))
        assert "traces" not in payload
        assert "Slowest sampled traces" not in text
