"""Tests for the regression gate (baseline IO, diffing, end-to-end run)."""

import json

import pytest

from repro.harness.regress import (
    BASELINE_FIELDS,
    diff_against_baseline,
    load_baseline,
    run_regress,
    scale10_makespan,
    serve_p99,
    slo_budget_consumed,
    write_baseline,
)
from repro.obs.ledger import RunLedger


def _row(ex=0.5, input_tokens=900, output_tokens=100, makespan=10.0):
    return {
        "id": 1,
        "label": "regress",
        "pipeline": "udf",
        "fingerprint": "abc123def456",
        "ex": ex,
        "f1": None,
        "llm_calls": 10,
        "input_tokens": input_tokens,
        "output_tokens": output_tokens,
        "makespan": makespan,
        "payload": {"config": {"model": "m"}},
    }


class TestBaselineIO:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "base.json"
        written = write_baseline(path, _row())
        loaded = load_baseline(path)
        assert loaded == written
        assert loaded["total_tokens"] == 1000
        assert loaded["ex"] == pytest.approx(0.5)
        for field in BASELINE_FIELDS:
            assert field in loaded

    def test_missing_file(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") is None

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        assert load_baseline(path) is None

    def test_incomplete_baseline(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"ex": 0.5}), encoding="utf-8")
        assert load_baseline(path) is None

    def test_non_dict_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        assert load_baseline(path) is None


class TestDiff:
    def _baseline(self, ex=0.5, total_tokens=1000, makespan=10.0):
        return {
            "label": "regress",
            "pipeline": "udf",
            "fingerprint": "abc123def456",
            "llm_calls": 10,
            "config": {"model": "m"},
            "ex": ex,
            "total_tokens": total_tokens,
            "makespan": makespan,
        }

    def test_identical_passes(self):
        ok, lines = diff_against_baseline(_row(), self._baseline())
        assert ok
        assert sum("[ok]" in line for line in lines) == 3

    def test_ex_drop_fails(self):
        ok, lines = diff_against_baseline(
            _row(ex=0.4), self._baseline(ex=0.5), max_ex_drop=0.05
        )
        assert not ok
        assert any("EX" in line and "FAIL" in line for line in lines)

    def test_ex_drop_within_threshold(self):
        ok, _ = diff_against_baseline(
            _row(ex=0.46), self._baseline(ex=0.5), max_ex_drop=0.05
        )
        assert ok

    def test_token_growth_fails(self):
        ok, lines = diff_against_baseline(
            _row(input_tokens=1150, output_tokens=0),
            self._baseline(total_tokens=1000),
            max_token_growth=0.10,
        )
        assert not ok
        assert any("tokens" in line and "FAIL" in line for line in lines)

    def test_makespan_growth_fails(self):
        ok, lines = diff_against_baseline(
            _row(makespan=20.0), self._baseline(makespan=10.0),
            max_makespan_growth=0.25,
        )
        assert not ok
        assert any("makespan" in line and "FAIL" in line for line in lines)

    def test_improvement_always_passes(self):
        ok, _ = diff_against_baseline(
            _row(ex=0.9, input_tokens=100, output_tokens=0, makespan=1.0),
            self._baseline(),
        )
        assert ok

    def test_fingerprint_change_noted_not_failed(self):
        baseline = self._baseline()
        baseline["fingerprint"] = "otherprint000"
        ok, lines = diff_against_baseline(_row(), baseline)
        assert ok
        assert any("fingerprint changed" in line for line in lines)


class TestScale10Guard:
    def _bench(self, tmp_path, makespan=50.0):
        path = tmp_path / "BENCH_scale.json"
        path.write_text(json.dumps({
            "scales": {
                "10": {"pipelines": {"udf": {"makespan_seconds": makespan}}}
            }
        }), encoding="utf-8")
        return path

    def test_reads_the_scale10_udf_makespan(self, tmp_path):
        assert scale10_makespan(self._bench(tmp_path, 42.5)) == 42.5

    def test_missing_file_or_rung_is_none(self, tmp_path):
        assert scale10_makespan(tmp_path / "nope.json") is None
        path = tmp_path / "BENCH_scale.json"
        path.write_text(json.dumps({"scales": {"1": {}}}), encoding="utf-8")
        assert scale10_makespan(path) is None

    def test_baseline_records_it(self, tmp_path):
        path = tmp_path / "base.json"
        written = write_baseline(path, _row(), scale10_makespan=50.0)
        assert written["scale10_makespan"] == 50.0
        assert load_baseline(path)["scale10_makespan"] == 50.0

    def test_growth_beyond_threshold_fails(self):
        baseline = {**TestDiff._baseline(self), "scale10_makespan": 50.0}
        ok, lines = diff_against_baseline(
            _row(), baseline, fresh_scale10=70.0, max_makespan_growth=0.25
        )
        assert not ok
        assert any(
            "scale10 makespan" in line and "[FAIL]" in line for line in lines
        )

    def test_growth_within_threshold_passes(self):
        baseline = {**TestDiff._baseline(self), "scale10_makespan": 50.0}
        ok, lines = diff_against_baseline(
            _row(), baseline, fresh_scale10=55.0, max_makespan_growth=0.25
        )
        assert ok
        assert any(
            "scale10 makespan" in line and "[ok]" in line for line in lines
        )

    def test_missing_bench_is_a_note_not_a_failure(self):
        baseline = {**TestDiff._baseline(self), "scale10_makespan": 50.0}
        ok, lines = diff_against_baseline(_row(), baseline, fresh_scale10=None)
        assert ok
        assert any("not checked" in line for line in lines)

    def test_missing_baseline_key_is_a_note_not_a_failure(self):
        ok, lines = diff_against_baseline(
            _row(), TestDiff._baseline(self), fresh_scale10=50.0
        )
        assert ok
        assert any("no scale10_makespan" in line for line in lines)


class TestServeP99Guard:
    def _bench(self, tmp_path, p99=30.0):
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps({
            "levels": [
                {"multiplier": 1.0, "p99": 99.0},
                {"multiplier": 0.25, "p99": p99},
            ]
        }), encoding="utf-8")
        return path

    def test_reads_the_lowest_level_p99(self, tmp_path):
        assert serve_p99(self._bench(tmp_path, 12.5)) == 12.5

    def test_missing_file_or_levels_is_none(self, tmp_path):
        assert serve_p99(tmp_path / "nope.json") is None
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps({"levels": []}), encoding="utf-8")
        assert serve_p99(path) is None

    def test_baseline_records_it(self, tmp_path):
        path = tmp_path / "base.json"
        written = write_baseline(path, _row(), serve_p99=30.0)
        assert written["serve_p99"] == 30.0
        assert load_baseline(path)["serve_p99"] == 30.0

    def test_growth_beyond_threshold_fails(self):
        baseline = {**TestDiff._baseline(self), "serve_p99": 30.0}
        ok, lines = diff_against_baseline(
            _row(), baseline, fresh_serve_p99=45.0, max_makespan_growth=0.25
        )
        assert not ok
        assert any(
            "serve p99" in line and "[FAIL]" in line for line in lines
        )

    def test_growth_within_threshold_passes(self):
        baseline = {**TestDiff._baseline(self), "serve_p99": 30.0}
        ok, lines = diff_against_baseline(
            _row(), baseline, fresh_serve_p99=33.0, max_makespan_growth=0.25
        )
        assert ok
        assert any("serve p99" in line and "[ok]" in line for line in lines)

    def test_missing_bench_is_a_note_not_a_failure(self):
        baseline = {**TestDiff._baseline(self), "serve_p99": 30.0}
        ok, lines = diff_against_baseline(
            _row(), baseline, fresh_serve_p99=None
        )
        assert ok
        assert any("serve p99 not checked" in line for line in lines)

    def test_missing_baseline_key_is_a_note_not_a_failure(self):
        ok, lines = diff_against_baseline(
            _row(), TestDiff._baseline(self), fresh_serve_p99=30.0
        )
        assert ok
        assert any("no serve_p99" in line for line in lines)


class TestRunRegress:
    """End-to-end: one real (deterministic, mock-oracle) workload run."""

    def test_update_then_pass_then_breach(self, tmp_path):
        ledger = tmp_path / "ledger.sqlite"
        baseline = tmp_path / "baseline.json"

        code, text = run_regress(
            ledger_path=ledger, baseline_path=baseline, update_baseline=True
        )
        assert code == 0
        assert "baseline updated" in text
        assert baseline.exists()

        # identical rerun: deterministic workload, must pass cleanly
        code, text = run_regress(ledger_path=ledger, baseline_path=baseline)
        assert code == 0
        assert "regression check: PASS" in text

        # poison the baseline: the same run now reads as a regression
        doctored = json.loads(baseline.read_text())
        doctored["ex"] = doctored["ex"] + 0.5
        baseline.write_text(json.dumps(doctored))
        code, text = run_regress(ledger_path=ledger, baseline_path=baseline)
        assert code == 1
        assert "regression check: FAIL" in text

        # all three runs were appended to the ledger
        with RunLedger(ledger) as led:
            assert len(led.runs(label="regress")) == 3

    def test_missing_baseline_fails_with_hint(self, tmp_path):
        code, text = run_regress(
            ledger_path=tmp_path / "l.sqlite",
            baseline_path=tmp_path / "missing.json",
        )
        assert code == 1
        assert "--update-baseline" in text


class TestSloBudgetGuard:
    def _bench(self, tmp_path, budget=0.0):
        path = tmp_path / "BENCH_slo.json"
        path.write_text(json.dumps({
            "levels": [
                {
                    "multiplier": 1.0,
                    "budgets": {"availability": {"budget_consumed": 0.9}},
                },
                {
                    "multiplier": 0.25,
                    "budgets": {"availability": {"budget_consumed": budget}},
                },
            ]
        }), encoding="utf-8")
        return path

    def test_reads_the_lowest_level_budget(self, tmp_path):
        assert slo_budget_consumed(self._bench(tmp_path, 0.015)) == 0.015

    def test_missing_file_or_levels_is_none(self, tmp_path):
        assert slo_budget_consumed(tmp_path / "nope.json") is None
        path = tmp_path / "BENCH_slo.json"
        path.write_text(json.dumps({"levels": []}), encoding="utf-8")
        assert slo_budget_consumed(path) is None

    def test_baseline_records_it(self, tmp_path):
        path = tmp_path / "base.json"
        written = write_baseline(path, _row(), slo_budget=0.0)
        assert written["slo_budget"] == 0.0
        assert load_baseline(path)["slo_budget"] == 0.0

    def test_absolute_increase_beyond_threshold_fails(self):
        # baseline ~0: relative growth would be inf, the bound is absolute
        baseline = {**TestDiff._baseline(self), "slo_budget": 0.0}
        ok, lines = diff_against_baseline(
            _row(), baseline, fresh_slo_budget=0.05
        )
        assert not ok
        assert any(
            "slo budget" in line and "[FAIL]" in line for line in lines
        )

    def test_increase_within_threshold_passes(self):
        baseline = {**TestDiff._baseline(self), "slo_budget": 0.0}
        ok, lines = diff_against_baseline(
            _row(), baseline, fresh_slo_budget=0.01
        )
        assert ok
        assert any("slo budget" in line and "[ok]" in line for line in lines)

    def test_missing_bench_is_a_note_not_a_failure(self):
        baseline = {**TestDiff._baseline(self), "slo_budget": 0.0}
        ok, lines = diff_against_baseline(
            _row(), baseline, fresh_slo_budget=None
        )
        assert ok
        assert any("error budget not checked" in line for line in lines)

    def test_missing_baseline_key_is_a_note_not_a_failure(self):
        ok, lines = diff_against_baseline(
            _row(), TestDiff._baseline(self), fresh_slo_budget=0.0
        )
        assert ok
        assert any("no slo_budget" in line for line in lines)


class TestServeTokensPerAnswer:
    """The 1x tokens-per-answer reader feeding the serving-economy pin."""

    def _bench(self, tmp_path, *, level_extra=None):
        from repro.harness.regress import serve_tokens_per_answer

        level = {"multiplier": 1.0, "p99": 10.0}
        level.update(level_extra or {})
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps({
            "levels": [
                {"multiplier": 0.5, "p99": 5.0},
                level,
            ],
        }), encoding="utf-8")
        return serve_tokens_per_answer(path)

    def test_prefers_the_batched_arm(self, tmp_path):
        value = self._bench(tmp_path, level_extra={
            "tokens_per_answer": 100.0,
            "batching": {"tokens_per_answer": 80.0},
        })
        assert value == 80.0

    def test_falls_back_to_the_level_figure(self, tmp_path):
        value = self._bench(
            tmp_path, level_extra={"tokens_per_answer": 100.0}
        )
        assert value == 100.0

    def test_missing_key_is_none(self, tmp_path):
        assert self._bench(tmp_path) is None

    def test_missing_file_is_none(self, tmp_path):
        from repro.harness.regress import serve_tokens_per_answer

        assert serve_tokens_per_answer(tmp_path / "nope.json") is None

    def test_no_1x_level_is_none(self, tmp_path):
        from repro.harness.regress import serve_tokens_per_answer

        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps({
            "levels": [{"multiplier": 2.0, "tokens_per_answer": 9.0}],
        }), encoding="utf-8")
        assert serve_tokens_per_answer(path) is None

    def test_written_into_baseline(self, tmp_path):
        path = tmp_path / "base.json"
        written = write_baseline(path, _row(), serve_tokens_per_answer=80.0)
        assert written["serve_tokens_per_answer"] == 80.0
        assert load_baseline(path)["serve_tokens_per_answer"] == 80.0

    def test_growth_breach_fails(self):
        baseline = {
            **TestDiff._baseline(self), "serve_tokens_per_answer": 100.0,
        }
        ok, lines = diff_against_baseline(
            _row(), baseline, fresh_serve_tpa=150.0
        )
        assert not ok
        assert any(
            "serve tokens/answer" in line and "[FAIL]" in line
            for line in lines
        )

    def test_growth_within_threshold_passes(self):
        baseline = {
            **TestDiff._baseline(self), "serve_tokens_per_answer": 100.0,
        }
        ok, lines = diff_against_baseline(
            _row(), baseline, fresh_serve_tpa=105.0
        )
        assert ok
        assert any(
            "serve tokens/answer" in line and "[ok]" in line
            for line in lines
        )

    def test_missing_fresh_value_is_a_note(self):
        baseline = {
            **TestDiff._baseline(self), "serve_tokens_per_answer": 100.0,
        }
        ok, lines = diff_against_baseline(
            _row(), baseline, fresh_serve_tpa=None
        )
        assert ok
        assert any("serve economy not checked" in line for line in lines)

    def test_missing_baseline_key_is_a_note(self):
        ok, lines = diff_against_baseline(
            _row(), TestDiff._baseline(self), fresh_serve_tpa=80.0
        )
        assert ok
        assert any(
            "no serve_tokens_per_answer" in line for line in lines
        )
