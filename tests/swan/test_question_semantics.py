"""Semantic lint over the 120 questions, beyond parse-ability.

These check structural invariants relating each question's three queries
to the world metadata: the HQDL query must touch the expansion tables it
declares, the blend query must reference curated tables, declared
expansion columns must exist, and gold queries must reference only
original-schema tables.
"""

import pytest

from repro.sqlparser import parse
from repro.sqlparser.rewrite import find_ingredients, tables_in
from repro.swan.questions import all_questions
from repro.udf.ingredients import parse_ingredient_call


@pytest.fixture(scope="module")
def questions():
    return all_questions()


class TestDeclaredColumnsExist:
    def test_expansion_columns_are_real(self, questions, swan):
        for question in questions:
            world = swan.world(question.database)
            known = {
                column.name
                for expansion in world.expansions
                for column in expansion.columns
            }
            for declared in question.expansion_columns:
                assert declared in known, (question.qid, declared)


class TestGoldQueries:
    def test_reference_only_original_tables(self, questions, swan):
        for question in questions:
            world = swan.world(question.database)
            original = set(world.original_schema.table_names())
            for table in tables_in(parse(question.gold_sql)):
                assert table.name in original, (question.qid, table.name)

    def test_never_reference_expansion_tables(self, questions, swan):
        for question in questions:
            world = swan.world(question.database)
            expansions = {e.name for e in world.expansions}
            for table in tables_in(parse(question.gold_sql)):
                assert table.name not in expansions, question.qid


class TestHqdlQueries:
    def test_reference_curated_or_expansion_tables(self, questions, swan):
        for question in questions:
            world = swan.world(question.database)
            allowed = set(world.curated_schema.table_names()) | {
                e.name for e in world.expansions
            }
            for table in tables_in(parse(question.hqdl_sql)):
                assert table.name in allowed, (question.qid, table.name)

    def test_touch_an_expansion_table(self, questions, swan):
        """Beyond-database means the hybrid query needs generated data."""
        for question in questions:
            world = swan.world(question.database)
            expansions = {e.name for e in world.expansions}
            touched = {t.name for t in tables_in(parse(question.hqdl_sql))}
            assert touched & expansions, question.qid

    def test_never_touch_dropped_tables(self, questions, swan):
        for question in questions:
            world = swan.world(question.database)
            curated = set(world.curated_schema.table_names())
            original = set(world.original_schema.table_names())
            dropped = original - curated
            touched = {t.name for t in tables_in(parse(question.hqdl_sql))}
            assert not (touched & dropped), question.qid


class TestBlendQueries:
    def test_reference_only_curated_tables(self, questions, swan):
        for question in questions:
            world = swan.world(question.database)
            curated = set(world.curated_schema.table_names())
            for table in tables_in(parse(question.blend_sql)):
                assert table.name in curated, (question.qid, table.name)

    def test_map_keys_match_expansion_key_design(self, questions, swan):
        """LLMMap key columns must be exactly the expansion's keys
        (Section 3.4's meaningful-key contract)."""
        for question in questions:
            world = swan.world(question.database)
            by_source = {e.source_table: e for e in world.expansions}
            for node in find_ingredients(parse(question.blend_sql)):
                call = parse_ingredient_call(node)
                if call.kind == "LLMQA":
                    continue
                expansion = by_source[call.source_table]
                assert call.key_columns == expansion.key_columns, (
                    question.qid, call.key_columns,
                )

    def test_question_text_mentions_no_sql(self, questions):
        """Map questions are natural language, not SQL fragments."""
        for question in questions:
            for node in find_ingredients(parse(question.blend_sql)):
                call = parse_ingredient_call(node)
                assert "SELECT" not in call.question.upper().split()
                assert "::" not in call.question
