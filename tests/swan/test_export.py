"""Tests for the benchmark export artifacts."""

import json

import pytest

from repro.sqlengine.database import Database
from repro.swan.export import export_benchmark, load_questions


@pytest.fixture(scope="module")
def exported(swan, tmp_path_factory):
    directory = tmp_path_factory.mktemp("swan_export")
    return export_benchmark(swan, directory)


class TestExportLayout:
    def test_questions_file(self, exported):
        questions = load_questions(exported)
        assert len(questions) == 120
        sample = questions[0]
        assert {"qid", "database", "text", "gold_sql", "hqdl_sql",
                "blend_sql"} <= set(sample)

    def test_value_lists_file(self, exported):
        lists = json.loads((exported / "value_lists.json").read_text())
        assert "publishers" in lists["superhero"]
        assert "Marvel Comics" in lists["superhero"]["publishers"]

    def test_databases_written(self, exported, swan):
        for name in swan.database_names():
            assert (exported / f"{name}_original.db").exists()
            assert (exported / f"{name}_curated.db").exists()

    def test_expansion_specs(self, exported):
        specs = json.loads((exported / "superhero_expansions.json").read_text())
        assert specs[0]["name"] == "superhero_info"
        assert specs[0]["key_columns"] == ["superhero_name", "full_name"]
        column_names = {c["name"] for c in specs[0]["columns"]}
        assert "publisher_name" in column_names


class TestExportedDatabasesWork:
    def test_gold_query_runs_on_exported_original(self, exported, swan):
        question = swan.question("superhero_q01")
        with Database.open(exported / "superhero_original.db") as db:
            result = db.query(question.gold_sql)
        assert len(result) > 0

    def test_curated_misses_dropped_table(self, exported):
        with Database.open(exported / "superhero_curated.db") as db:
            assert not db.has_table("publisher")
            assert db.has_table("superhero")

    def test_export_is_idempotent(self, exported, swan):
        again = export_benchmark(swan, exported)
        assert load_questions(again) == load_questions(exported)
