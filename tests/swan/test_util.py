"""Tests for the deterministic world-generation helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.swan.worlds.util import (
    det_choice,
    det_int,
    det_sample,
    det_shuffle,
    det_uniform,
    slugify,
)


class TestDetUniform:
    def test_deterministic(self):
        assert det_uniform("a", 1) == det_uniform("a", 1)

    def test_in_unit_interval(self):
        for i in range(200):
            assert 0.0 <= det_uniform("seed", i) < 1.0

    def test_part_sensitivity(self):
        assert det_uniform("a") != det_uniform("a", "")


class TestDetInt:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(-50, 50), st.integers(0, 50), st.integers())
    def test_within_bounds(self, low, span, seed):
        high = low + span
        value = det_int(low, high, "t", seed)
        assert low <= value <= high

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            det_int(5, 4, "t")

    def test_single_value_range(self):
        assert det_int(7, 7, "x") == 7


class TestDetChoiceSampleShuffle:
    def test_choice_from_options(self):
        options = ["a", "b", "c"]
        assert det_choice(options, 1) in options

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            det_choice([], 1)

    def test_sample_distinct_and_ordered(self):
        options = list(range(20))
        sample = det_sample(options, 5, "seed")
        assert len(set(sample)) == 5
        assert sample == sorted(sample)  # order-stable by construction

    def test_sample_too_many_rejected(self):
        with pytest.raises(ValueError):
            det_sample([1, 2], 3, "seed")

    def test_shuffle_is_permutation(self):
        options = ["a", "b", "c", "d", "e"]
        shuffled = det_shuffle(options, "seed")
        assert sorted(shuffled) == sorted(options)

    def test_shuffle_deterministic(self):
        assert det_shuffle(range(10), "s") == det_shuffle(range(10), "s")


class TestSlugify:
    def test_basic(self):
        assert slugify("Lincoln High School") == "lincolnhighschool"

    def test_separator(self):
        assert slugify("Red Bull Racing", "_") == "red_bull_racing"

    def test_punctuation_stripped(self):
        assert slugify("T'Challa & Co.") == "tchallaco"

    def test_empty(self):
        assert slugify("") == ""
