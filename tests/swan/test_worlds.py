"""Structural and determinism tests over all four SWAN worlds."""

import pytest

from repro.swan.worlds import WORLD_BUILDERS

WORLD_NAMES = sorted(WORLD_BUILDERS)


@pytest.fixture(scope="module")
def worlds():
    return {name: builder() for name, builder in WORLD_BUILDERS.items()}


@pytest.mark.parametrize("name", WORLD_NAMES)
class TestWorldStructure:
    def test_rows_match_schema_width(self, worlds, name):
        world = worlds[name]
        for table in world.original_schema.tables:
            for row in world.original_rows[table.name]:
                assert len(row) == len(table.columns), table.name

    def test_curated_rows_match_curated_schema(self, worlds, name):
        world = worlds[name]
        for table in world.curated_schema.tables:
            for row in world.curated_rows[table.name]:
                assert len(row) == len(table.columns), table.name

    def test_curation_dropped_something(self, worlds, name):
        world = worlds[name]
        assert world.dropped_columns > 0

    def test_expansion_keys_unique_and_text(self, worlds, name):
        world = worlds[name]
        for expansion in world.expansions:
            keys = world.keys_for(expansion.name)
            assert len(keys) == len(set(keys))
            assert all(isinstance(part, str) for key in keys for part in key)

    def test_truth_covers_every_generated_column(self, worlds, name):
        world = worlds[name]
        for expansion in world.expansions:
            for key in world.keys_for(expansion.name):
                for column in expansion.columns:
                    value = world.truth_value(expansion.name, key, column.name)
                    assert value is not None

    def test_expansion_keys_cover_source_table(self, worlds, name):
        """Every curated source row must have a truth entry to generate."""
        world = worlds[name]
        for expansion in world.expansions:
            source = world.curated_schema.table(expansion.source_table)
            key_indexes = [
                source.column_names().index(c) for c in expansion.key_columns
            ]
            truth_keys = set(world.truth[expansion.name])
            for row in world.curated_rows[expansion.source_table]:
                key = tuple(str(row[i]) for i in key_indexes)
                assert key in truth_keys, (expansion.name, key)

    def test_selection_truth_values_in_value_lists(self, worlds, name):
        world = worlds[name]
        for expansion in world.expansions:
            for column in expansion.columns:
                if column.kind != "selection":
                    continue
                allowed = set(world.value_lists[column.value_list])
                for key in world.keys_for(expansion.name):
                    value = world.truth_value(expansion.name, key, column.name)
                    assert str(value) in allowed, (column.name, value)

    def test_deterministic_rebuild(self, worlds, name):
        rebuilt = WORLD_BUILDERS[name]()
        world = worlds[name]
        assert rebuilt.original_rows == world.original_rows
        assert rebuilt.truth == world.truth

    def test_stats_shape(self, worlds, name):
        stats = worlds[name].stats()
        assert stats["tables"] > 0
        assert stats["rows_per_table"] > 0

    def test_popularity_defaults_to_one(self, worlds, name):
        world = worlds[name]
        assert world.key_popularity("no_such_expansion", ("x",)) == 1.0


class TestRelativeScale:
    def test_formula_one_is_largest(self, worlds):
        sizes = {
            name: world.stats()["rows_per_table"] for name, world in worlds.items()
        }
        assert sizes["formula_1"] == max(sizes.values())

    def test_superhero_is_smallest(self, worlds):
        sizes = {
            name: world.stats()["rows_per_table"] for name, world in worlds.items()
        }
        assert sizes["superhero"] == min(sizes.values())


class TestSuperheroSpecifics:
    def test_eleven_columns_dropped(self, worlds):
        # matches the paper's Table 1 for the Superhero database
        assert worlds["superhero"].dropped_columns == 11

    def test_famous_heroes_more_popular_than_synthetic(self, worlds):
        world = worlds["superhero"]
        famous = world.key_popularity("superhero_info", ("Batman", "Bruce Wayne"))
        synthetic_keys = [
            key for key, pop in world.popularity["superhero_info"].items()
            if pop < 1.0
        ]
        assert famous > 1.0
        assert synthetic_keys

    def test_powers_are_tuples(self, worlds):
        world = worlds["superhero"]
        powers = world.truth_value(
            "superhero_info", ("Superman", "Clark Kent"), "powers"
        )
        assert isinstance(powers, tuple)
        assert "Flight" in powers


class TestFormulaOneSpecifics:
    def test_three_expansion_tables(self, worlds):
        assert len(worlds["formula_1"].expansions) == 3

    def test_hamilton_code(self, worlds):
        world = worlds["formula_1"]
        assert world.truth_value("driver_info", ("Lewis", "Hamilton"), "code") == "HAM"

    def test_standings_are_cumulative(self, worlds):
        world = worlds["formula_1"]
        rows = world.original_rows["driver_standings"]
        races = world.original_rows["races"]
        last_race_2022 = max(r[0] for r in races if r[1] == 2022)
        leader_points = max(r[2] for r in rows if r[0] == last_race_2022)
        # 20 races, max 25 points each
        assert 100 <= leader_points <= 500


class TestFootballSpecifics:
    def test_messi_truth(self, worlds):
        world = worlds["european_football"]
        assert world.truth_value("player_info", ("Lionel Messi",), "height_cm") == 170

    def test_team_short_names_unique_enough(self, worlds):
        world = worlds["european_football"]
        shorts = [
            world.truth_value("team_info", key, "team_short_name")
            for key in world.keys_for("team_info")
        ]
        assert len(set(shorts)) == len(shorts)


class TestSchoolsSpecifics:
    def test_frpm_rate_consistent(self, worlds):
        world = worlds["california_schools"]
        for row in world.original_rows["frpm"]:
            _, enrollment, _, frpm_count, rate = row
            assert 0.0 <= rate <= 1.0
            assert frpm_count <= enrollment

    def test_most_websites_end_in_edu(self, worlds):
        world = worlds["california_schools"]
        sites = [
            world.truth_value("school_info", key, "website")
            for key in world.keys_for("school_info")
        ]
        edu = sum(1 for s in sites if s.endswith(".edu"))
        assert edu > len(sites) * 0.6
