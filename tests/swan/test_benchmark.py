"""Tests for the Swan benchmark loader."""

import pytest

from repro.errors import ReproError
from repro.swan.benchmark import DATABASE_ORDER, DATABASE_TITLES, load_benchmark


class TestLoader:
    def test_cached_instance(self):
        assert load_benchmark() is load_benchmark()

    def test_four_worlds(self, swan):
        assert set(swan.worlds) == set(DATABASE_ORDER)

    def test_unknown_world_raises(self, swan):
        with pytest.raises(ReproError):
            swan.world("wikipedia")

    def test_question_lookup(self, swan):
        question = swan.question("superhero_q01")
        assert question.database == "superhero"
        with pytest.raises(ReproError):
            swan.question("nope_q99")

    def test_questions_for(self, swan):
        assert len(swan.questions_for("formula_1")) == 30

    def test_database_names_ordered(self, swan):
        assert swan.database_names() == list(DATABASE_ORDER)

    def test_stats_table_titles(self, swan):
        # the paper writes "Superhero" in Table 1 but "Super Hero" in
        # Tables 2-3; compare ignoring spacing
        titles = [
            str(row["database"]).replace(" ", "").lower()
            for row in swan.stats_table()
        ]
        expected = [
            DATABASE_TITLES[name].replace(" ", "").lower()
            for name in DATABASE_ORDER
        ]
        assert titles == expected
