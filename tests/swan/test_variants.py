"""Tests for blend-query phrasing variation and value-option attachment."""

from repro.swan.base import Question
from repro.swan.questions.variants import attach_value_options, vary_blend_questions


def make_question(blend_sql, qid="demo_q01"):
    return Question(
        qid=qid,
        database="demo",
        text="?",
        gold_sql="SELECT 1",
        hqdl_sql="SELECT 1",
        blend_sql=blend_sql,
    )


CANONICAL = "What is the color of this widget?"
BLEND = (
    "SELECT * FROM widgets WHERE "
    f"{{{{LLMMap('{CANONICAL}', 'widgets::name')}}}} = 'Red'"
)


class TestVaryBlendQuestions:
    def test_rotation_by_position(self):
        variants = {CANONICAL: [CANONICAL, "State the color of this widget."]}
        questions = [make_question(BLEND, f"demo_q{i:02d}") for i in range(4)]
        varied = vary_blend_questions(questions, variants)
        assert CANONICAL in varied[0].blend_sql
        assert "State the color" in varied[1].blend_sql
        assert CANONICAL in varied[2].blend_sql

    def test_untouched_questions_pass_through(self):
        question = make_question("SELECT 1")
        assert vary_blend_questions([question], {CANONICAL: ["x"]})[0] is question

    def test_other_fields_preserved(self):
        variants = {CANONICAL: ["Different phrasing of the color question?"]}
        varied = vary_blend_questions([make_question(BLEND)], variants)[0]
        assert varied.gold_sql == "SELECT 1"
        assert varied.qid == "demo_q01"


class TestAttachValueOptions:
    def test_option_added_inside_call(self):
        rewritten = attach_value_options(
            [make_question(BLEND)], {CANONICAL: "colors"}
        )[0]
        assert "options='colors')}}" in rewritten.blend_sql
        # still parses
        from repro.sqlparser import parse
        from repro.sqlparser.rewrite import find_ingredients

        nodes = find_ingredients(parse(rewritten.blend_sql))
        assert nodes[0].options == {"options": "colors"}

    def test_unrelated_question_untouched(self):
        rewritten = attach_value_options(
            [make_question(BLEND)], {"Another question?": "colors"}
        )[0]
        assert "options" not in rewritten.blend_sql

    def test_applies_to_every_occurrence(self):
        double = make_question(BLEND + " AND " + BLEND.split("WHERE ")[1])
        rewritten = attach_value_options([double], {CANONICAL: "colors"})[0]
        assert rewritten.blend_sql.count("options='colors'") == 2
