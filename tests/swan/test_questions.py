"""Tests over the 120 SWAN questions: counts, parseability, resolution."""

import pytest

from repro.llm.oracle import KnowledgeOracle
from repro.sqlparser import parse, render
from repro.sqlparser.rewrite import find_ingredients
from repro.swan.questions import all_questions
from repro.udf.ingredients import parse_ingredient_call


@pytest.fixture(scope="module")
def questions():
    return all_questions()


class TestInventory:
    def test_exactly_120_questions(self, questions):
        assert len(questions) == 120

    def test_thirty_per_database(self, questions):
        from collections import Counter

        counts = Counter(q.database for q in questions)
        assert set(counts.values()) == {30}
        assert len(counts) == 4

    def test_qids_unique(self, questions):
        assert len({q.qid for q in questions}) == 120

    def test_every_question_has_text(self, questions):
        assert all(q.text.strip() for q in questions)


class TestQueries:
    def test_all_queries_parse_and_round_trip(self, questions):
        for question in questions:
            for sql in (question.gold_sql, question.hqdl_sql, question.blend_sql):
                rendered = render(parse(sql))
                assert render(parse(rendered)) == rendered, question.qid

    def test_gold_queries_have_no_ingredients(self, questions):
        for question in questions:
            assert not find_ingredients(parse(question.gold_sql)), question.qid
            assert not find_ingredients(parse(question.hqdl_sql)), question.qid

    def test_blend_queries_have_ingredients(self, questions):
        for question in questions:
            assert find_ingredients(parse(question.blend_sql)), question.qid

    def test_ordered_flag_implies_order_by(self, questions):
        for question in questions:
            if question.ordered:
                assert "ORDER BY" in question.gold_sql.upper(), question.qid


class TestMapQuestionResolution:
    def test_every_map_question_resolves_to_declared_attribute(self, questions, swan):
        """The NL question in every LLMMap must resolve to a generated column
        the question declares — the keyword-cue system must be unambiguous."""
        for question in questions:
            world = swan.world(question.database)
            oracle = KnowledgeOracle(world)
            for node in find_ingredients(parse(question.blend_sql)):
                call = parse_ingredient_call(node)
                _, column = oracle.resolve_attribute(call.question)
                assert column.name in question.expansion_columns, (
                    question.qid, call.question, column.name,
                )

    def test_map_key_columns_exist_in_curated_schema(self, questions, swan):
        for question in questions:
            world = swan.world(question.database)
            for node in find_ingredients(parse(question.blend_sql)):
                call = parse_ingredient_call(node)
                if call.kind == "LLMQA":
                    continue
                table = world.curated_schema.table(call.source_table)
                for column in call.key_columns:
                    assert table.has_column(column), (question.qid, column)


class TestPhrasingVariants:
    def test_questions_for_same_attribute_use_varied_wording(self, questions):
        """Section 5.5: per-query phrasing defeats the prompt cache."""
        from collections import defaultdict

        phrasings = defaultdict(set)
        for question in questions:
            for node in find_ingredients(parse(question.blend_sql)):
                call = parse_ingredient_call(node)
                if call.kind == "LLMMap":
                    phrasings[(question.database, call.key_columns)].add(call.question)
        varied = [len(texts) for texts in phrasings.values()]
        # every heavily-used attribute has at least two distinct phrasings
        assert max(varied) >= 3
        assert sum(1 for v in varied if v >= 2) >= 4

    def test_selection_maps_carry_value_options(self, questions):
        found_options = 0
        for question in questions:
            for node in find_ingredients(parse(question.blend_sql)):
                if "options" in node.options:
                    found_options += 1
        assert found_options > 30


class TestLimitDistribution:
    def test_california_schools_is_limit_heavy(self, questions):
        """Paper: ~1/3 of CA questions LIMIT; ~1/10 for Super Hero."""
        def limit_fraction(db):
            subset = [q for q in questions if q.database == db]
            return sum(1 for q in subset if "LIMIT" in q.gold_sql.upper()) / len(subset)

        assert limit_fraction("california_schools") >= 0.3
        assert limit_fraction("superhero") <= 0.15
