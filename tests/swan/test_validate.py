"""Tests for the benchmark self-check API."""

import pytest

from repro.swan.base import Question
from repro.swan.benchmark import Swan
from repro.swan.validate import validate_swan


class TestValidateSwan:
    @pytest.fixture(scope="class")
    def report(self, swan):
        return validate_swan(swan)

    def test_shipped_benchmark_is_consistent(self, report):
        assert report.consistent, report.summary()
        assert report.questions == 120
        assert report.empty_gold == []

    def test_summary_reads_ok(self, report):
        assert report.summary().startswith("OK: all 120")

    def test_detects_broken_question(self, swan, superhero_world):
        broken = Question(
            qid="superhero_q99",
            database="superhero",
            text="deliberately inconsistent",
            gold_sql="SELECT COUNT(*) FROM superhero",
            hqdl_sql="SELECT COUNT(*) + 1 FROM superhero",
            blend_sql=(
                "SELECT COUNT(*) FROM superhero WHERE "
                "{{LLMMap('What is the gender of this superhero?', "
                "'superhero::superhero_name', 'superhero::full_name')}} "
                "= 'Female'"
            ),
        )
        tiny = Swan(worlds={"superhero": superhero_world}, questions=[broken])
        report = validate_swan(tiny)
        assert not report.consistent
        pipelines = {issue.pipeline for issue in report.issues}
        assert "hqdl" in pipelines
        assert "udf" in pipelines
        assert "mismatch" in report.summary()

    def test_detects_invalid_gold_sql(self, swan, superhero_world):
        broken = Question(
            qid="superhero_q98",
            database="superhero",
            text="broken gold",
            gold_sql="SELECT nothing FROM nowhere",
            hqdl_sql="SELECT 1",
            blend_sql="SELECT {{LLMQA('Which comic book publisher published "
                      "the superhero ''Hellboy''?')}}",
        )
        tiny = Swan(worlds={"superhero": superhero_world}, questions=[broken])
        report = validate_swan(tiny)
        assert any(issue.pipeline == "gold" for issue in report.issues)
