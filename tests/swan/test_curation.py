"""Tests for schema curation."""

import pytest

from repro.errors import CurationError
from repro.sqlengine.schema import ColumnSchema, DatabaseSchema, TableSchema
from repro.swan.curation import CurationPlan, apply_curation, distinct_values


def make_db():
    schema = DatabaseSchema(
        "demo",
        [
            TableSchema("a", [ColumnSchema("x"), ColumnSchema("y"), ColumnSchema("z")]),
            TableSchema("b", [ColumnSchema("p"), ColumnSchema("q")]),
        ],
    )
    rows = {
        "a": [("x1", "y1", "z1"), ("x2", "y2", "z2")],
        "b": [("p1", "q1")],
    }
    return schema, rows


class TestApplyCuration:
    def test_drop_columns(self):
        schema, rows = make_db()
        result = apply_curation(schema, rows, CurationPlan(drop_columns={"a": ("y",)}))
        assert result.schema.table("a").column_names() == ["x", "z"]
        assert result.rows["a"] == [("x1", "z1"), ("x2", "z2")]
        assert result.dropped_columns == 1

    def test_drop_table_counts_all_columns(self):
        schema, rows = make_db()
        result = apply_curation(schema, rows, CurationPlan(drop_tables=("b",)))
        assert not result.schema.has_table("b")
        assert "b" not in result.rows
        assert result.dropped_columns == 2

    def test_combined_plan(self):
        schema, rows = make_db()
        plan = CurationPlan(drop_columns={"a": ("x", "z")}, drop_tables=("b",))
        result = apply_curation(schema, rows, plan)
        assert result.dropped_columns == 4

    def test_unknown_table_raises(self):
        schema, rows = make_db()
        with pytest.raises(CurationError):
            apply_curation(schema, rows, CurationPlan(drop_tables=("ghost",)))

    def test_unknown_column_raises(self):
        schema, rows = make_db()
        with pytest.raises(CurationError):
            apply_curation(schema, rows, CurationPlan(drop_columns={"a": ("ghost",)}))

    def test_drop_table_and_its_columns_conflicts(self):
        schema, rows = make_db()
        plan = CurationPlan(drop_columns={"b": ("p",)}, drop_tables=("b",))
        with pytest.raises(CurationError):
            apply_curation(schema, rows, plan)

    def test_untouched_tables_copied(self):
        schema, rows = make_db()
        result = apply_curation(schema, rows, CurationPlan(drop_columns={"a": ("y",)}))
        assert result.rows["b"] == rows["b"]
        assert result.rows["b"] is not rows["b"]  # independent copy


class TestDistinctValues:
    def test_sorted_unique(self):
        rows = [("b",), ("a",), ("b",), (None,)]
        assert distinct_values(rows, 0) == ["a", "b"]
