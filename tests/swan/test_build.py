"""Tests for database materialization."""

import pytest

from repro.swan.build import (
    build_curated_database,
    build_original_database,
    save_databases,
)
from repro.swan.worlds import WORLD_BUILDERS


@pytest.fixture(scope="module")
def world():
    return WORLD_BUILDERS["superhero"]()


class TestBuild:
    def test_original_has_all_tables_and_rows(self, world):
        with build_original_database(world) as db:
            assert set(db.table_names()) == set(world.original_schema.table_names())
            for table in world.original_schema.tables:
                assert db.row_count(table.name) == len(world.original_rows[table.name])

    def test_curated_drops_tables(self, world):
        with build_curated_database(world) as db:
            names = db.table_names()
            assert "publisher" not in names
            assert "hero_power" not in names
            assert "superhero" in names

    def test_curated_drops_columns(self, world):
        with build_curated_database(world) as db:
            columns = db.table_columns("superhero")
            assert "publisher_id" not in columns
            assert "superhero_name" in columns

    def test_gold_join_executes_on_original(self, world):
        with build_original_database(world) as db:
            count = db.query_scalar(
                "SELECT COUNT(*) FROM superhero s "
                "JOIN publisher p ON s.publisher_id = p.id"
            )
            assert count == len(world.original_rows["superhero"])

    def test_save_databases(self, world, tmp_path):
        original, curated = save_databases(world, tmp_path)
        assert original.exists() and curated.exists()
        # files round-trip
        from repro.sqlengine.database import Database

        with Database.open(curated) as db:
            assert db.row_count("superhero") == len(world.curated_rows["superhero"])


class TestBuildTimeIndexes:
    def _index_names(self, db):
        return set(db.query_column(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND name LIKE 'idx_%'"
        ))

    def test_foreign_keys_indexed(self, world):
        with build_curated_database(world) as db:
            names = self._index_names(db)
            assert names, "expected FK indexes at world build time"
            for table in world.curated_schema.tables:
                for fk in table.foreign_keys:
                    expected = f"idx_{table.name}_{'_'.join(fk.columns)}"
                    assert expected in names

    def test_expansion_join_keys_indexed(self, world):
        with build_curated_database(world) as db:
            names = self._index_names(db)
            for expansion in world.expansions:
                if expansion.source_table not in db.table_names():
                    continue
                columns = set(db.table_columns(expansion.source_table))
                if not set(expansion.key_columns) <= columns:
                    continue
                expected = (
                    f"idx_{expansion.source_table}_"
                    f"{'_'.join(expansion.key_columns)}"
                )
                assert expected in names

    def test_original_database_also_indexed(self, world):
        with build_original_database(world) as db:
            assert self._index_names(db)
