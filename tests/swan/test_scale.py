"""Tests for world scaling: determinism, FK integrity, and the 1x no-op.

The scaler's contract (tentpole PR 6): ``scale_world`` is a pure
function of ``(world, scale)``, so two scale-10 builds are
byte-identical; every synthesized replica preserves FK integrity and PK
uniqueness; and scale 1 is exactly the current builder — the scaled
code paths must not perturb the seed benchmark.
"""

import pytest

from repro.errors import ReproError
from repro.swan.build import (
    _at_scale,
    build_curated_database,
    build_original_database,
)
from repro.swan.scale import replica_suffix, scale_world
from repro.swan.worlds import WORLD_BUILDERS

SCALE = 10


def _dump(db) -> list[str]:
    return list(db.connection.iterdump())


@pytest.fixture(scope="module", params=sorted(WORLD_BUILDERS))
def scaled(request):
    """(base world, the same world scaled 10x), one per SWAN database."""
    base = WORLD_BUILDERS[request.param]()
    return base, scale_world(base, SCALE)


class TestDeterminism:
    def test_two_builds_byte_identical(self):
        first = scale_world(WORLD_BUILDERS["superhero"](), SCALE)
        second = scale_world(WORLD_BUILDERS["superhero"](), SCALE)
        with build_original_database(first) as a, \
                build_original_database(second) as b:
            assert _dump(a) == _dump(b)
        with build_curated_database(first) as a, \
                build_curated_database(second) as b:
            assert _dump(a) == _dump(b)

    def test_scale_one_is_the_current_builder(self):
        base = WORLD_BUILDERS["superhero"]()
        assert _at_scale(base, 1) is base
        with build_original_database(base) as plain, \
                build_original_database(base, scale=1) as at_one:
            assert _dump(plain) == _dump(at_one)

    def test_rescaling_a_scaled_world_is_rejected(self, scaled):
        _, world = scaled
        with pytest.raises(ReproError, match="already scaled"):
            _at_scale(world, 100)

    def test_asking_for_the_current_scale_is_a_noop(self, scaled):
        _, world = scaled
        assert _at_scale(world, SCALE) is world


class TestIntegrityAtScale:
    def test_row_counts_multiply_for_scaled_tables(self, scaled):
        base, world = scaled
        assert world.scale == SCALE
        grew = 0
        for table, rows in base.original_rows.items():
            scaled_rows = world.original_rows[table]
            assert len(scaled_rows) in (len(rows), len(rows) * SCALE)
            grew += len(scaled_rows) == len(rows) * SCALE
        assert grew > 0, "no table grew at scale 10"

    def test_fk_integrity(self, scaled):
        _, world = scaled
        with build_original_database(world) as db:
            for table in world.original_schema.tables:
                for fk in table.foreign_keys:
                    cols = ", ".join(fk.columns)
                    refs = " AND ".join(
                        f"t.{c} = r.{rc}"
                        for c, rc in zip(fk.columns, fk.ref_columns)
                    )
                    null = " OR ".join(f"t.{c} IS NULL" for c in fk.columns)
                    orphans = db.query_scalar(
                        f"SELECT COUNT(*) FROM {table.name} t "
                        f"WHERE NOT ({null}) AND NOT EXISTS "
                        f"(SELECT 1 FROM {fk.ref_table} r WHERE {refs})"
                    )
                    assert orphans == 0, (
                        f"{orphans} orphaned rows in "
                        f"{table.name}({cols}) -> {fk.ref_table}"
                    )

    def test_pk_uniqueness(self, scaled):
        _, world = scaled
        with build_original_database(world) as db:
            for table in world.original_schema.tables:
                if not table.primary_key:
                    continue
                pk = ", ".join(table.primary_key)
                duplicates = db.query_scalar(
                    f"SELECT COUNT(*) FROM (SELECT {pk} FROM {table.name} "
                    f"GROUP BY {pk} HAVING COUNT(*) > 1)"
                )
                assert duplicates == 0, f"duplicate PKs in {table.name}"

    def test_truth_replicated_for_every_key(self, scaled):
        _, world = scaled
        for expansion in world.expansions:
            truths = world.truth[expansion.name]
            assert len(truths) % SCALE == 0
            suffix = replica_suffix(1)
            assert any(
                any(str(part).endswith(suffix) for part in key)
                for key in truths
            ), f"no replica-suffixed truth keys for {expansion.name}"
