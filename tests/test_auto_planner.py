"""Tests for the automated hybrid-query planner (Section 6 future work)."""

import pytest

from repro.auto.planner import (
    HybridQueryPlanner,
    PlanningError,
    evaluate_planner,
    resolve_attribute,
)
from repro.sqlengine.results import results_match
from repro.swan.build import build_curated_database, build_original_database
from repro.udf.executor import HybridQueryExecutor

from tests.conftest import make_model


@pytest.fixture(scope="module")
def superhero_planner(superhero_world):
    return HybridQueryPlanner(superhero_world)


@pytest.fixture(scope="module")
def football_planner(football_world):
    return HybridQueryPlanner(football_world)


class TestResolution:
    def test_resolves_publisher(self, superhero_world):
        resolved = resolve_attribute(
            superhero_world, "Which publisher released this comic?"
        )
        assert resolved is not None
        assert resolved[1].name == "publisher_name"

    def test_unresolvable_returns_none(self, superhero_world):
        assert resolve_attribute(superhero_world, "what is six times nine") is None


class TestPlanning:
    def test_count_with_selection_filter(self, superhero_planner):
        planned = superhero_planner.plan("How many superheroes have blue eyes?")
        assert planned.intent == "count"
        assert planned.attributes == ("eye_color",)
        assert "COUNT(*)" in planned.blend_sql
        assert "= 'Blue'" in planned.blend_sql

    def test_list_with_selection_filter(self, superhero_planner):
        planned = superhero_planner.plan(
            "List the superhero names of heroes with green skin."
        )
        assert planned.intent == "list"
        assert planned.blend_sql.startswith("SELECT superhero_name FROM superhero")

    def test_multi_attribute_conjunction(self, superhero_planner):
        planned = superhero_planner.plan(
            "Which heroes have both blond hair and blue eyes?"
        )
        assert set(planned.attributes) == {"hair_color", "eye_color"}
        assert planned.blend_sql.count("LLMMap") == 2

    def test_numeric_comparison(self, football_planner):
        planned = football_planner.plan(
            "List the names of players taller than 180 cm."
        )
        assert "CAST(" in planned.blend_sql
        assert "> 180" in planned.blend_sql

    def test_lookup_entity(self, superhero_planner):
        planned = superhero_planner.plan("What is the eye color of Superman?")
        assert planned.intent == "lookup"
        assert "superhero_name = 'Superman'" in planned.blend_sql

    def test_not_beyond_database_rejected(self, superhero_planner):
        with pytest.raises(PlanningError, match="answerable from the database"):
            superhero_planner.plan("How many heroes are taller than 2 meters?")

    def test_no_extractable_filter_rejected(self, superhero_planner):
        with pytest.raises(PlanningError, match="neither a filter value"):
            superhero_planner.plan("Tell me something about publishers.")


class TestPlannedQueriesExecute:
    @pytest.mark.parametrize(
        "question_text, qid",
        [
            ("How many superheroes have blue eyes?", "superhero_q04"),
            ("List the superhero names of heroes with green skin.",
             "superhero_q05"),
            ("What is the eye color of Superman?", "superhero_q16"),
            ("What is the race of Thor?", "superhero_q29"),
        ],
    )
    def test_planned_query_matches_gold(
        self, swan, superhero_world, superhero_planner, question_text, qid
    ):
        planned = superhero_planner.plan(question_text)
        gold_question = swan.question(qid)
        with build_original_database(superhero_world) as orig, \
                build_curated_database(superhero_world) as curated:
            executor = HybridQueryExecutor(
                curated, make_model(superhero_world), superhero_world
            )
            expected = orig.query(gold_question.gold_sql)
            actual = executor.execute(planned.blend_sql)
        assert results_match(expected, actual), planned.blend_sql


class TestEvaluation:
    def test_planner_report_on_swan(self, swan):
        report = evaluate_planner(swan)
        assert report.total == 120
        # a preliminary planner, but a useful one: it translates a third+
        # of SWAN and gets a third+ of those exactly right
        assert report.coverage >= 1 / 3
        assert report.planned_accuracy >= 1 / 3
        # failures carry actionable reasons
        assert all(reason for reason in report.failures.values())
