"""Repository-wide API quality checks."""

import ast
import importlib
import pathlib
import pkgutil

import pytest

import repro

SRC = pathlib.Path(repro.__file__).parent


def _all_modules():
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module.name)
    return names


MODULES = _all_modules()


class TestDocumentation:
    @pytest.mark.parametrize("name", MODULES)
    def test_every_module_has_a_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), name

    def test_every_substantial_public_function_documented(self):
        """Public functions/classes with non-trivial bodies need docstrings;
        one-line properties and accessors may speak for themselves."""
        undocumented = []
        for path in SRC.rglob("*.py"):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    if node.name.startswith("_"):
                        continue
                    if len(node.body) <= 3 and not isinstance(node, ast.ClassDef):
                        continue
                    if not ast.get_docstring(node):
                        undocumented.append(f"{path.name}:{node.name}")
        assert not undocumented, undocumented

    def test_readme_points_at_real_files(self):
        root = SRC.parent.parent
        readme = (root / "README.md").read_text()
        for needed in ("DESIGN.md", "EXPERIMENTS.md", "examples/quickstart.py"):
            assert needed in readme
            assert (root / needed).exists()


class TestImportHygiene:
    @pytest.mark.parametrize("name", MODULES)
    def test_modules_import_cleanly(self, name):
        importlib.import_module(name)

    def test_no_runtime_third_party_dependencies(self):
        """The library itself must run on the stdlib alone."""
        stdlib_ok = {"__future__", "bisect", "concurrent", "csv",
                     "dataclasses", "enum", "functools", "hashlib", "heapq",
                     "io", "itertools", "json", "math", "pathlib", "re",
                     "sqlite3", "sys", "tempfile", "threading", "time",
                     "typing",
                     "collections"}
        violations = []
        for path in SRC.rglob("*.py"):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                roots = []
                if isinstance(node, ast.Import):
                    roots = [alias.name.split(".")[0] for alias in node.names]
                elif isinstance(node, ast.ImportFrom) and node.level == 0:
                    roots = [(node.module or "").split(".")[0]]
                for root in roots:
                    if root and root not in stdlib_ok and root != "repro":
                        violations.append(f"{path.name}: {root}")
        assert not violations, violations
