"""Property-based fuzzing of the hybrid executor.

For randomly chosen attributes, filter values, and query shapes, a
perfect-model execution must equal the answer computed directly from the
world's ground truth.  This exercises the parser → pushdown → batching →
rewrite → SQLite path far beyond the 120 hand-written queries.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor

from tests.conftest import make_model

ATTRIBUTE_QUESTIONS = {
    "publisher_name": "Which comic book publisher published this superhero?",
    "eye_color": "What is the eye color of this superhero?",
    "hair_color": "What is the hair color of this superhero?",
    "race": "What is the race of this superhero?",
    "gender": "What is the gender of this superhero?",
    "moral_alignment": "What is the moral alignment of this superhero?",
}

VALUE_LIST_BY_ATTRIBUTE = {
    "publisher_name": "publishers",
    "eye_color": "colours",
    "hair_color": "colours",
    "race": "races",
    "gender": "genders",
    "moral_alignment": "alignments",
}


@pytest.fixture(scope="module")
def harness(superhero_world):
    db = build_curated_database(superhero_world)
    executor = HybridQueryExecutor(db, make_model(superhero_world),
                                   superhero_world)
    yield superhero_world, executor
    db.close()


def _map_expr(attribute):
    question = ATTRIBUTE_QUESTIONS[attribute]
    return (
        f"{{{{LLMMap('{question}', 'superhero::superhero_name', "
        "'superhero::full_name')}}"
    )


def _truth_matches(world, attribute, value):
    return {
        key
        for key, entry in world.truth["superhero_info"].items()
        if str(entry[attribute]) == value
    }


attributes = st.sampled_from(sorted(ATTRIBUTE_QUESTIONS))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(attribute=attributes, data=st.data())
def test_count_filter_matches_truth(harness, attribute, data):
    world, executor = harness
    values = world.value_lists[VALUE_LIST_BY_ATTRIBUTE[attribute]]
    value = data.draw(st.sampled_from(values))
    sql = (
        f"SELECT COUNT(*) FROM superhero WHERE {_map_expr(attribute)} "
        f"= '{value}'"
    )
    assert executor.execute(sql).scalar() == len(
        _truth_matches(world, attribute, value)
    )


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(attribute=attributes, data=st.data())
def test_list_filter_matches_truth(harness, attribute, data):
    world, executor = harness
    values = world.value_lists[VALUE_LIST_BY_ATTRIBUTE[attribute]]
    value = data.draw(st.sampled_from(values))
    sql = (
        "SELECT superhero_name, full_name FROM superhero WHERE "
        f"{_map_expr(attribute)} = '{value}'"
    )
    result = {tuple(row) for row in executor.execute(sql).rows}
    assert result == _truth_matches(world, attribute, value)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(first=attributes, second=attributes, data=st.data())
def test_conjunction_of_two_attributes(harness, first, second, data):
    world, executor = harness
    if first == second:
        return
    first_value = data.draw(
        st.sampled_from(world.value_lists[VALUE_LIST_BY_ATTRIBUTE[first]])
    )
    second_value = data.draw(
        st.sampled_from(world.value_lists[VALUE_LIST_BY_ATTRIBUTE[second]])
    )
    sql = (
        "SELECT COUNT(*) FROM superhero WHERE "
        f"{_map_expr(first)} = '{first_value}' AND "
        f"{_map_expr(second)} = '{second_value}'"
    )
    expected = _truth_matches(world, first, first_value) & _truth_matches(
        world, second, second_value
    )
    assert executor.execute(sql).scalar() == len(expected)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(attribute=attributes, data=st.data())
def test_lookup_single_entity(harness, attribute, data):
    world, executor = harness
    key = data.draw(st.sampled_from(sorted(world.truth["superhero_info"])))
    hero, full_name = key
    sql = (
        f"SELECT {_map_expr(attribute)} FROM superhero WHERE "
        f"superhero_name = '{hero.replace(chr(39), chr(39) * 2)}' AND "
        f"full_name = '{full_name.replace(chr(39), chr(39) * 2)}'"
    )
    truth = str(world.truth_value("superhero_info", key, attribute))
    assert executor.execute(sql).scalar() == truth
