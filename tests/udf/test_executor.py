"""Tests for the hybrid query executor."""

import pytest

from repro.errors import IngredientError
from repro.llm.cache import PromptCache
from repro.swan.build import build_curated_database, build_original_database
from repro.sqlengine.results import results_match
from repro.udf.executor import HybridQueryExecutor, _parse_map_answers

from tests.conftest import make_model


@pytest.fixture()
def executor(superhero_world):
    db = build_curated_database(superhero_world)
    yield HybridQueryExecutor(db, make_model(superhero_world), superhero_world)
    db.close()


class TestMapExecution:
    def test_map_filter(self, executor, superhero_world):
        result = executor.execute(
            "SELECT superhero_name FROM superhero WHERE "
            "{{LLMMap('Which comic book publisher published this superhero?', "
            "'superhero::superhero_name', 'superhero::full_name')}} "
            "= 'Dark Horse Comics'"
        )
        names = {row[0] for row in result.rows}
        expected = {
            key[0]
            for key, entry in superhero_world.truth["superhero_info"].items()
            if entry["publisher_name"] == "Dark Horse Comics"
        }
        assert names == expected
        assert {"Hellboy", "The Mask", "Ghost"} <= names

    def test_map_in_select_list(self, executor):
        result = executor.execute(
            "SELECT superhero_name, "
            "{{LLMMap('What is the eye color of this superhero?', "
            "'superhero::superhero_name', 'superhero::full_name')}} AS eye "
            "FROM superhero WHERE superhero_name = 'Superman'"
        )
        assert result.rows == [("Superman", "Blue")]

    def test_shared_signature_one_generation(self, executor):
        _, report = executor.execute_with_report(
            "SELECT {{LLMMap('What is the race of this superhero?', "
            "'superhero::superhero_name', 'superhero::full_name')}} FROM superhero "
            "ORDER BY {{LLMMap('What is the race of this superhero?', "
            "'superhero::superhero_name', 'superhero::full_name')}} LIMIT 3"
        )
        # one generation pass over all heroes, not two (SELECT + ORDER BY)
        import math

        total_keys = list(report.keys_after_pushdown.values())[0]
        assert report.llm_calls == math.ceil(total_keys / 5)

    def test_map_as_from_source_rejected(self, executor):
        with pytest.raises(IngredientError):
            executor.execute(
                "SELECT * FROM {{LLMMap('q', 'superhero::superhero_name')}} AS m"
            )


class TestPushdown:
    QUERY = (
        "SELECT {{LLMMap('Which comic book publisher published this superhero?', "
        "'superhero::superhero_name', 'superhero::full_name')}} FROM superhero "
        "WHERE superhero_name = 'Batman'"
    )

    def test_pushdown_limits_keys(self, superhero_world):
        db = build_curated_database(superhero_world)
        executor = HybridQueryExecutor(
            db, make_model(superhero_world), superhero_world, pushdown=True
        )
        result, report = executor.execute_with_report(self.QUERY)
        assert result.rows == [("DC Comics",)]
        assert list(report.keys_after_pushdown.values()) == [1]
        assert report.llm_calls == 1
        db.close()

    def test_pushdown_off_generates_everything(self, superhero_world):
        db = build_curated_database(superhero_world)
        executor = HybridQueryExecutor(
            db, make_model(superhero_world), superhero_world, pushdown=False
        )
        result, report = executor.execute_with_report(self.QUERY)
        assert result.rows == [("DC Comics",)]
        assert list(report.keys_after_pushdown.values())[0] > 100
        db.close()


class TestQA:
    def test_qa_substitution(self, executor):
        result = executor.execute(
            "SELECT superhero_name FROM superhero WHERE "
            "{{LLMMap('Which comic book publisher published this superhero?', "
            "'superhero::superhero_name', 'superhero::full_name')}} = "
            "{{LLMQA('Which comic book publisher published the superhero "
            "''Hellboy''?')}} AND superhero_name != 'Hellboy'"
        )
        expected = {
            key[0]
            for key, entry in executor.world.truth["superhero_info"].items()
            if entry["publisher_name"] == "Dark Horse Comics"
        } - {"Hellboy"}
        assert {row[0] for row in result.rows} == expected


class TestLLMJoin:
    def test_join_source(self, executor):
        result = executor.execute(
            "SELECT s.superhero_name, j.value FROM superhero s "
            "JOIN {{LLMJoin('What is the gender of this superhero?', "
            "'superhero::superhero_name', 'superhero::full_name')}} AS j "
            "ON s.superhero_name = j.superhero_name "
            "AND s.full_name = j.full_name "
            "WHERE s.superhero_name = 'Batgirl'"
        )
        assert result.rows == [("Batgirl", "Female")]

    def test_llmqa_as_source_rejected(self, executor):
        with pytest.raises(IngredientError):
            executor.execute("SELECT * FROM {{LLMQA('q')}} AS j")


class TestBatching:
    def test_batch_size_controls_call_count(self, superhero_world):
        total_keys = len(superhero_world.truth["superhero_info"])
        query = (
            "SELECT COUNT(*) FROM superhero WHERE "
            "{{LLMMap('What is the gender of this superhero?', "
            "'superhero::superhero_name', 'superhero::full_name')}} = 'Female'"
        )
        for batch_size in (1, 5, 25):
            db = build_curated_database(superhero_world)
            executor = HybridQueryExecutor(
                db, make_model(superhero_world), superhero_world,
                batch_size=batch_size,
            )
            _, report = executor.execute_with_report(query)
            expected_calls = -(-total_keys // batch_size)  # ceil division
            assert report.llm_calls == expected_calls
            db.close()

    def test_invalid_batch_size(self, superhero_world):
        db = build_curated_database(superhero_world)
        with pytest.raises(ValueError):
            HybridQueryExecutor(
                db, make_model(superhero_world), superhero_world, batch_size=0
            )
        db.close()


class TestCaching:
    def test_repeated_query_hits_cache(self, superhero_world):
        db = build_curated_database(superhero_world)
        cache = PromptCache()
        executor = HybridQueryExecutor(
            db, make_model(superhero_world), superhero_world, cache=cache
        )
        query = (
            "SELECT COUNT(*) FROM superhero WHERE "
            "{{LLMMap('What is the race of this superhero?', "
            "'superhero::superhero_name', 'superhero::full_name')}} = 'Human'"
        )
        executor.execute(query)
        misses_after_first = cache.misses
        executor.execute(query)
        assert cache.misses == misses_after_first  # all hits second time
        assert cache.hits >= misses_after_first
        db.close()

    def test_different_phrasing_misses(self, superhero_world):
        db = build_curated_database(superhero_world)
        cache = PromptCache()
        executor = HybridQueryExecutor(
            db, make_model(superhero_world), superhero_world, cache=cache
        )
        executor.execute(
            "SELECT COUNT(*) FROM superhero WHERE "
            "{{LLMMap('What is the race of this superhero?', "
            "'superhero::superhero_name', 'superhero::full_name')}} = 'Human'"
        )
        misses_first = cache.misses
        executor.execute(
            "SELECT COUNT(*) FROM superhero WHERE "
            "{{LLMMap('State the race of this hero.', "
            "'superhero::superhero_name', 'superhero::full_name')}} = 'Human'"
        )
        assert cache.misses == 2 * misses_first
        db.close()


class TestAnswerParsing:
    def test_ordered_answers(self):
        assert _parse_map_answers("1. a\n2. b", 2) == ["a", "b"]

    def test_gap_becomes_none(self):
        assert _parse_map_answers("1. a\n3. c", 3) == ["a", None, "c"]

    def test_noise_lines_ignored(self):
        assert _parse_map_answers("Sure!\n1. a\nthanks", 1) == ["a"]

    def test_out_of_range_ignored(self):
        assert _parse_map_answers("1. a\n9. z", 1) == ["a"]

    def test_answer_containing_dots(self):
        assert _parse_map_answers("1. www.school.edu", 1) == ["www.school.edu"]

    def test_empty_answer_is_none(self):
        assert _parse_map_answers("1. \n2. b", 2) == [None, "b"]


class TestEndToEndPerfect:
    def test_formula_one_sample(self, swan, formula_world):
        db = build_curated_database(formula_world)
        executor = HybridQueryExecutor(
            db, make_model(formula_world), formula_world
        )
        with build_original_database(formula_world) as orig:
            for question in swan.questions_for("formula_1")[:8]:
                expected = orig.query(question.gold_sql)
                actual = executor.execute(question.blend_sql)
                assert results_match(expected, actual, ordered=question.ordered), (
                    question.qid
                )
        db.close()
