"""Tests for materialized views over LLM generations."""

import pytest

from repro.llm.usage import UsageMeter
from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor
from repro.udf.views import MaterializedViewStore


FULL_SCAN = (
    "SELECT COUNT(*) FROM superhero WHERE "
    "{{LLMMap('What is the race of this superhero?', "
    "'superhero::superhero_name', 'superhero::full_name')}} = 'Human'"
)
PUSHED_DOWN = (
    "SELECT {{LLMMap('What is the race of this superhero?', "
    "'superhero::superhero_name', 'superhero::full_name')}} "
    "FROM superhero WHERE superhero_name = 'Thor'"
)


@pytest.fixture()
def setup(superhero_world):
    meter = UsageMeter()
    model = MockChatModel(
        KnowledgeOracle(superhero_world), get_profile("perfect"), meter=meter
    )
    db = build_curated_database(superhero_world)
    views = MaterializedViewStore()
    executor = HybridQueryExecutor(db, model, superhero_world, views=views)
    yield executor, views, meter, db
    db.close()


class TestMaterialization:
    def test_complete_generation_materializes(self, setup):
        executor, views, meter, db = setup
        executor.execute(FULL_SCAN)
        assert len(views) == 1
        assert views.stats.materializations == 1
        # the view is a real, inspectable table
        (name,) = [t for t in db.table_names() if t.startswith("llm_view_")]
        assert db.row_count(name) > 100

    def test_second_execution_reads_view(self, setup):
        executor, views, meter, _ = setup
        first = executor.execute(FULL_SCAN)
        calls_after_first = meter.total.calls
        second = executor.execute(FULL_SCAN)
        assert meter.total.calls == calls_after_first  # zero new LLM calls
        assert views.stats.hits == 1
        assert first.rows == second.rows

    def test_partial_generation_not_materialized(self, setup):
        executor, views, _, _ = setup
        result = executor.execute(PUSHED_DOWN)
        assert result.rows == [("Asgardian",)]
        assert len(views) == 0  # pushdown covered one key only

    def test_view_serves_pushed_down_query_later(self, setup):
        executor, views, meter, _ = setup
        executor.execute(FULL_SCAN)  # complete -> materialized
        calls = meter.total.calls
        result = executor.execute(PUSHED_DOWN)
        assert result.rows == [("Asgardian",)]
        assert meter.total.calls == calls  # answered from the view


class TestInvalidation:
    def test_invalidate_drops_table(self, setup):
        executor, views, _, db = setup
        executor.execute(FULL_SCAN)
        signature = next(iter(views._tables))
        name = views._tables[signature]
        assert views.invalidate(db, signature)
        assert not db.has_table(name)
        assert len(views) == 0

    def test_invalidate_unknown_is_false(self, setup):
        _, views, _, db = setup
        assert not views.invalidate(db, ("nope",))

    def test_invalidate_all(self, setup):
        executor, views, _, db = setup
        executor.execute(FULL_SCAN)
        assert views.invalidate_all(db) == 1
        assert views.invalidate_all(db) == 0

    def test_refresh_after_invalidation(self, setup):
        executor, views, meter, db = setup
        executor.execute(FULL_SCAN)
        views.invalidate_all(db)
        calls = meter.total.calls
        executor.execute(FULL_SCAN)
        # the view is rebuilt — but the regeneration itself is served by
        # the prompt cache, so no new *paid* LLM calls happen
        assert meter.total.calls == calls
        assert views.stats.materializations == 2
        assert len(views) == 1
