"""Tests for ingredient-call validation."""

import pytest

from repro.errors import IngredientError
from repro.sqlparser import ast
from repro.udf.ingredients import parse_ingredient_call


def ing(name, args, options=None):
    return ast.Ingredient(name=name, args=args, options=options or {})


class TestLLMMap:
    def test_basic(self):
        call = parse_ingredient_call(ing("LLMMap", ["q?", "t::c"]))
        assert call.kind == "LLMMap"
        assert call.question == "q?"
        assert call.source_table == "t"
        assert call.key_columns == ("c",)

    def test_composite_key(self):
        call = parse_ingredient_call(
            ing("LLMMap", ["q", "hero::name", "hero::full_name"])
        )
        assert call.key_columns == ("name", "full_name")

    def test_mixed_tables_rejected(self):
        with pytest.raises(IngredientError):
            parse_ingredient_call(ing("LLMMap", ["q", "a::x", "b::y"]))

    def test_missing_key_rejected(self):
        with pytest.raises(IngredientError):
            parse_ingredient_call(ing("LLMMap", ["q"]))

    def test_bad_key_reference(self):
        with pytest.raises(IngredientError):
            parse_ingredient_call(ing("LLMMap", ["q", "no-separator"]))
        with pytest.raises(IngredientError):
            parse_ingredient_call(ing("LLMMap", ["q", "::col"]))

    def test_options_preserved(self):
        call = parse_ingredient_call(
            ing("LLMMap", ["q", "t::c"], {"options": "publishers"})
        )
        assert dict(call.options) == {"options": "publishers"}


class TestLLMQA:
    def test_basic(self):
        call = parse_ingredient_call(ing("LLMQA", ["who?"]))
        assert call.kind == "LLMQA"
        assert call.source_table == ""

    def test_extra_args_rejected(self):
        with pytest.raises(IngredientError):
            parse_ingredient_call(ing("LLMQA", ["q", "t::c"]))


class TestValidation:
    def test_unknown_name(self):
        with pytest.raises(IngredientError):
            parse_ingredient_call(ing("LLMDream", ["q"]))

    def test_no_args(self):
        with pytest.raises(IngredientError):
            parse_ingredient_call(ing("LLMMap", []))

    def test_signature_identity(self):
        a = parse_ingredient_call(ing("LLMMap", ["q", "t::c"]))
        b = parse_ingredient_call(ing("LLMMap", ["q", "t::c"], {"options": "x"}))
        assert a.signature() == b.signature()  # options don't change identity
