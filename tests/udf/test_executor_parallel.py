"""Determinism of the executor under the parallel dispatcher.

The acceptance bar from ISSUE 1: ``workers=8`` must produce byte-identical
``ResultSet``s and identical aggregate ``Usage`` token totals as
``workers=1`` on every SWAN UDF question, while issuing at most one
upstream call per unique prompt.
"""

from __future__ import annotations

import threading

import pytest

from repro.llm.chat import MockChatModel
from repro.llm.client import ChatResponse
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor


class CallCountingModel:
    """Wraps a MockChatModel, counting upstream calls per prompt."""

    def __init__(self, inner: MockChatModel) -> None:
        self.inner = inner
        self.model_name = inner.model_name
        self.calls_by_prompt: dict[str, int] = {}
        self._lock = threading.Lock()

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        with self._lock:
            self.calls_by_prompt[prompt] = self.calls_by_prompt.get(prompt, 0) + 1
        return self.inner.complete(prompt, label=label)


def _run_database(swan, name: str, workers: int):
    """All questions of one SWAN database under one executor config."""
    world = swan.world(name)
    model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-3.5-turbo"))
    counting = CallCountingModel(model)
    results = {}
    with build_curated_database(world) as db:
        executor = HybridQueryExecutor(
            db, counting, world, shots=0, workers=workers
        )
        for question in swan.questions_for(name):
            results[question.qid] = executor.execute(question.blend_sql)
    return results, model.meter.total, counting.calls_by_prompt


@pytest.mark.parametrize("name", ["superhero", "california_schools"])
def test_workers_8_identical_to_workers_1(swan, name):
    sequential, seq_usage, seq_calls = _run_database(swan, name, workers=1)
    parallel, par_usage, par_calls = _run_database(swan, name, workers=8)

    # byte-identical result sets on every question
    assert sequential.keys() == parallel.keys()
    for qid in sequential:
        assert sequential[qid].rows == parallel[qid].rows, qid
        assert sequential[qid].columns == parallel[qid].columns, qid

    # identical aggregate token totals
    assert seq_usage == par_usage

    # at most one upstream call per unique prompt (single-flight + cache)
    assert all(count == 1 for count in par_calls.values())
    assert par_calls == seq_calls


def test_failed_batch_degrades_without_aborting_siblings(swan):
    """An LLMError in one batch yields None answers, not a query failure."""
    from repro.errors import LLMError
    from repro.llm.usage import Usage

    world = swan.world("superhero")

    class FlakyModel:
        """Fails the batch containing a chosen key; answers the rest."""

        def __init__(self, inner):
            self.inner = inner
            self.model_name = inner.model_name
            self.failed = 0
            self._lock = threading.Lock()

        def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
            if "Spider-Man" in prompt:
                with self._lock:
                    self.failed += 1
                raise LLMError("injected batch failure")
            return self.inner.complete(prompt, label=label)

    inner = MockChatModel(KnowledgeOracle(world), get_profile("perfect"))
    flaky = FlakyModel(inner)
    query = (
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        "'superhero::superhero_name', 'superhero::full_name')}} "
        "= 'Marvel Comics' ORDER BY superhero_name"
    )
    with build_curated_database(world) as db:
        executor = HybridQueryExecutor(db, flaky, world, workers=4)
        flaky_result = executor.execute(query)
    assert flaky.failed >= 1

    with build_curated_database(world) as db:
        executor = HybridQueryExecutor(db, inner, world, workers=4)
        full_result = executor.execute(query)

    # the failed batch's keys have no generated value (-> filtered out),
    # but every other batch still answered
    full_names = {row[0] for row in full_result.rows}
    flaky_names = {row[0] for row in flaky_result.rows}
    assert "Spider-Man" in full_names
    assert "Spider-Man" not in flaky_names
    assert flaky_names < full_names
    assert flaky_names  # siblings of the failed batch survived


def test_workers_validation(swan):
    world = swan.world("superhero")
    model = MockChatModel(KnowledgeOracle(world), get_profile("perfect"))
    with build_curated_database(world) as db:
        with pytest.raises(ValueError):
            HybridQueryExecutor(db, model, world, workers=0)
