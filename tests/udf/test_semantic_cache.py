"""Tests for semantic caching with query rewriting."""

import pytest

from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.llm.usage import UsageMeter
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor
from repro.udf.semantic_cache import SemanticCache, equivalence_prompt

from tests.conftest import make_model


HEIGHT_Q1 = "What is the height in centimeters of this football player?"
HEIGHT_Q2 = "How tall is this football player in centimeters?"
WEIGHT_Q = "What is the weight in kilograms of this football player?"


@pytest.fixture()
def football_client(football_world):
    return make_model(football_world)


class TestEquivalenceProtocol:
    def test_equivalent_phrasings_yes(self, football_client):
        prompt = equivalence_prompt(HEIGHT_Q1, HEIGHT_Q2)
        assert football_client.complete(prompt).text == "yes"

    def test_different_attributes_no(self, football_client):
        prompt = equivalence_prompt(HEIGHT_Q1, WEIGHT_Q)
        assert football_client.complete(prompt).text == "no"

    def test_unresolvable_is_no(self, football_client):
        prompt = equivalence_prompt(HEIGHT_Q1, "What is the meaning of life?")
        assert football_client.complete(prompt).text == "no"


class TestSemanticCache:
    def test_exact_hit(self, football_client):
        cache = SemanticCache()
        cache.store(HEIGHT_Q1, {("A",): "180"})
        mapping = cache.lookup(HEIGHT_Q1, football_client)
        assert mapping == {("A",): "180"}
        assert cache.stats.exact_hits == 1

    def test_rewrite_across_phrasings(self, football_client):
        cache = SemanticCache()
        cache.store(HEIGHT_Q1, {("A",): "180"})
        mapping = cache.lookup(HEIGHT_Q2, football_client)
        assert mapping == {("A",): "180"}
        assert cache.stats.rewrites == 1

    def test_different_attribute_rejected(self, football_client):
        cache = SemanticCache()
        cache.store(HEIGHT_Q1, {("A",): "180"})
        assert cache.lookup(WEIGHT_Q, football_client) is None
        assert cache.stats.rejected_rewrites == 1

    def test_miss_on_empty_cache(self, football_client):
        cache = SemanticCache()
        assert cache.lookup(HEIGHT_Q1, football_client) is None
        assert cache.stats.misses == 1

    def test_store_extends_existing(self, football_client):
        cache = SemanticCache()
        cache.store(HEIGHT_Q1, {("A",): "180"})
        cache.store(HEIGHT_Q1, {("B",): "190"})
        assert len(cache) == 1
        assert cache.lookup(HEIGHT_Q1, football_client) == {
            ("A",): "180", ("B",): "190",
        }


class TestExecutorIntegration:
    def test_rewrite_saves_calls(self, football_world):
        meter = UsageMeter()
        model = MockChatModel(
            KnowledgeOracle(football_world), get_profile("perfect"), meter=meter
        )
        cache = SemanticCache()
        with build_curated_database(football_world) as db:
            executor = HybridQueryExecutor(
                db, model, football_world, semantic_cache=cache
            )
            first = executor.execute(
                f"SELECT MAX(CAST({{{{LLMMap('{HEIGHT_Q1}', "
                "'player::player_name')}} AS INTEGER)) FROM player"
            )
            calls_after_first = meter.total.calls
            second = executor.execute(
                "SELECT COUNT(*) FROM player WHERE "
                f"CAST({{{{LLMMap('{HEIGHT_Q2}', "
                "'player::player_name')}} AS INTEGER) > 180"
            )
            rewrite_overhead = meter.total.calls - calls_after_first
        # the second query reused every height: only the equivalence
        # check itself reached the model
        assert rewrite_overhead == 1
        assert cache.stats.keys_reused == len(
            football_world.truth["player_info"]
        )
        assert first.scalar() is not None
        assert second.scalar() is not None

    def test_results_identical_with_and_without(self, football_world, swan):
        question = swan.question("european_football_q02")
        results = []
        for semantic_cache in (None, SemanticCache()):
            with build_curated_database(football_world) as db:
                executor = HybridQueryExecutor(
                    db, make_model(football_world, "gpt-4-turbo"),
                    football_world, semantic_cache=semantic_cache,
                )
                results.append(sorted(executor.execute(question.blend_sql).rows))
        assert results[0] == results[1]
