"""Executor edge cases beyond the SWAN workload shapes."""

import pytest

from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor

from tests.conftest import make_model


@pytest.fixture()
def executor(superhero_world):
    db = build_curated_database(superhero_world)
    yield HybridQueryExecutor(db, make_model(superhero_world), superhero_world)
    db.close()


PUB_MAP = (
    "{{LLMMap('Which comic book publisher published this superhero?', "
    "'superhero::superhero_name', 'superhero::full_name')}}"
)


class TestPlainSQLPassThrough:
    def test_query_without_ingredients_executes(self, executor):
        result = executor.execute(
            "SELECT COUNT(*) FROM superhero WHERE height_cm > 200"
        )
        assert result.scalar() > 0

    def test_no_llm_calls_for_plain_sql(self, executor):
        _, report = executor.execute_with_report("SELECT 1")
        assert report.llm_calls == 0
        assert report.call_sizes == []


class TestIngredientPlacement:
    def test_map_in_having(self, executor):
        """Ingredient inside HAVING (grouped query) still resolves."""
        result = executor.execute(
            "SELECT superhero_name FROM superhero "
            "GROUP BY superhero_name, full_name "
            f"HAVING {PUB_MAP} = 'Dark Horse Comics'"
        )
        assert len(result) >= 3

    def test_map_in_order_by_only(self, executor):
        result = executor.execute(
            "SELECT superhero_name FROM superhero "
            f"ORDER BY {PUB_MAP}, superhero_name LIMIT 4"
        )
        assert len(result) == 4

    def test_map_inside_case_expression(self, executor):
        result = executor.execute(
            "SELECT COUNT(*) FROM superhero WHERE "
            f"CASE WHEN {PUB_MAP} = 'Marvel Comics' THEN 1 ELSE 0 END = 1"
        )
        truth_count = sum(
            1
            for entry in executor.world.truth["superhero_info"].values()
            if entry["publisher_name"] == "Marvel Comics"
        )
        assert result.scalar() == truth_count

    def test_maps_on_two_tables_in_one_query(self, swan):
        """Distinct source tables each get their own generation."""
        world = swan.world("formula_1")
        db = build_curated_database(world)
        executor = HybridQueryExecutor(db, make_model(world), world)
        result, report = executor.execute_with_report(
            "SELECT d.surname FROM results r "
            "JOIN drivers d ON r.driver_id = d.driver_id "
            "JOIN races ra ON r.race_id = ra.race_id "
            "JOIN circuits c ON ra.circuit_id = c.circuit_id WHERE "
            "{{LLMMap('What is the nationality of this Formula 1 driver?', "
            "'drivers::forename', 'drivers::surname')}} = 'British' AND "
            "{{LLMMap('In which country is this Formula 1 circuit?', "
            "'circuits::circuit_name')}} = 'UK' AND r.position = 1"
        )
        assert len(report.keys_after_pushdown) == 2
        # British winners at Silverstone exist in the generated seasons
        assert all(isinstance(row[0], str) for row in result.rows)
        db.close()


class TestReportDiagnostics:
    def test_rewritten_sql_is_plain_sqlite(self, executor):
        _, report = executor.execute_with_report(
            f"SELECT superhero_name FROM superhero WHERE {PUB_MAP} = 'DC Comics'"
        )
        assert "{{" not in report.rewritten_sql
        assert "SELECT v FROM __llm_ing_0" in report.rewritten_sql

    def test_call_sizes_recorded(self, executor):
        _, report = executor.execute_with_report(
            f"SELECT superhero_name FROM superhero WHERE {PUB_MAP} = 'DC Comics'"
        )
        assert len(report.call_sizes) == report.llm_calls
        assert all(i > 0 and o > 0 for i, o in report.call_sizes)

    def test_latency_estimate_positive(self, executor):
        _, report = executor.execute_with_report(
            f"SELECT superhero_name FROM superhero WHERE {PUB_MAP} = 'DC Comics'"
        )
        sequential = report.estimated_latency(workers=1)
        parallel = report.estimated_latency(workers=8)
        assert sequential > 0
        assert parallel <= sequential


class TestErrorPaths:
    def test_invalid_ingredient_name(self, executor):
        from repro.errors import IngredientError

        with pytest.raises(IngredientError):
            executor.execute("SELECT {{LLMDream('q', 't::c')}} FROM superhero")

    def test_unknown_source_table(self, executor):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            executor.execute(
                "SELECT {{LLMMap('What is the race of this superhero?', "
                "'ghost_table::name')}} FROM superhero"
            )
