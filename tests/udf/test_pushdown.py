"""Tests for predicate-pushdown analysis."""

from repro.sqlparser import parse, parse_expression
from repro.udf.pushdown import (
    conjunct_is_pushable,
    pushable_conjuncts,
    resolve_alias,
)

COLUMNS = {"a", "b", "name"}


class TestConjunctPushability:
    def test_qualified_matching_alias(self):
        expr = parse_expression("t.a = 1")
        assert conjunct_is_pushable(expr, "t", COLUMNS, single_source=False)

    def test_qualified_other_alias(self):
        expr = parse_expression("u.a = 1")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=False)

    def test_unqualified_single_source(self):
        expr = parse_expression("a = 1")
        assert conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=False)

    def test_unqualified_unknown_column(self):
        expr = parse_expression("ghost = 1")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)

    def test_ingredient_not_pushable(self):
        expr = parse_expression("{{LLMMap('q', 't::a')}} = 'x'")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)

    def test_subquery_not_pushable(self):
        expr = parse_expression("a IN (SELECT a FROM u)")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)

    def test_constant_predicate_not_pushable(self):
        expr = parse_expression("1 = 1")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)


class TestSelectLevel:
    def test_mixed_where(self):
        tree = parse(
            "SELECT * FROM t WHERE t.a = 1 AND {{LLMMap('q', 't::a')}} = 'x' "
            "AND t.b > 2"
        )
        conjuncts = pushable_conjuncts(tree, "t", COLUMNS)
        assert len(conjuncts) == 2

    def test_join_scope(self):
        tree = parse(
            "SELECT * FROM t JOIN u ON t.a = u.a "
            "WHERE t.a = 1 AND u.b = 2"
        )
        conjuncts = pushable_conjuncts(tree, "t", COLUMNS)
        assert len(conjuncts) == 1

    def test_no_where(self):
        tree = parse("SELECT * FROM t")
        assert pushable_conjuncts(tree, "t", COLUMNS) == []


class TestResolveAlias:
    def test_aliased(self):
        tree = parse("SELECT * FROM schools AS s JOIN frpm f ON s.c = f.c")
        assert resolve_alias(tree, "schools") == "s"
        assert resolve_alias(tree, "frpm") == "f"

    def test_bare_name(self):
        tree = parse("SELECT * FROM schools")
        assert resolve_alias(tree, "schools") == "schools"

    def test_missing(self):
        tree = parse("SELECT * FROM other")
        assert resolve_alias(tree, "schools") is None
        assert resolve_alias(None, "schools") is None


class TestConjunctEdgeCases:
    """The conservative boundary of the pushability analysis."""

    def test_exists_subquery_not_pushable(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM u WHERE u.a = t.a)")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=False)

    def test_scalar_subquery_not_pushable(self):
        expr = parse_expression("a = (SELECT MAX(a) FROM u)")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)

    def test_between_on_own_column_is_pushable(self):
        expr = parse_expression("t.a BETWEEN 1 AND 5")
        assert conjunct_is_pushable(expr, "t", COLUMNS, single_source=False)

    def test_is_null_on_own_column_is_pushable(self):
        expr = parse_expression("t.name IS NULL")
        assert conjunct_is_pushable(expr, "t", COLUMNS, single_source=False)

    def test_mixed_alias_comparison_not_pushable(self):
        # references both tables, so neither side can evaluate it alone
        expr = parse_expression("t.a = u.a")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=False)

    def test_qualified_and_unqualified_mix(self):
        # qualified ref pins the scope; the unqualified one must still be
        # resolvable, which requires a single source
        expr = parse_expression("t.a = 1 AND b = 2")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=False)
        assert conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)


class TestSelectLevelEdgeCases:
    def test_top_level_or_is_one_conjunct(self):
        # OR is not split: the whole disjunction is one conjunct, pushable
        # only if every branch is
        tree = parse("SELECT * FROM t WHERE t.a = 1 OR t.b = 2")
        assert len(pushable_conjuncts(tree, "t", COLUMNS)) == 1

    def test_or_with_foreign_branch_not_pushable(self):
        tree = parse(
            "SELECT * FROM t JOIN u ON t.a = u.a WHERE t.a = 1 OR u.b = 2"
        )
        assert pushable_conjuncts(tree, "t", COLUMNS) == []

    def test_subquery_conjunct_skipped_others_kept(self):
        tree = parse(
            "SELECT * FROM t WHERE a IN (SELECT a FROM u) AND t.b > 2"
        )
        conjuncts = pushable_conjuncts(tree, "t", COLUMNS)
        assert len(conjuncts) == 1

    def test_constant_conjunct_skipped(self):
        tree = parse("SELECT * FROM t WHERE 1 = 1 AND t.a = 3")
        assert len(pushable_conjuncts(tree, "t", COLUMNS)) == 1

    def test_multi_source_unqualified_not_pushable(self):
        # with two tables in scope an unqualified column is ambiguous
        tree = parse("SELECT * FROM t JOIN u ON t.a = u.a WHERE b = 2")
        assert pushable_conjuncts(tree, "t", COLUMNS) == []
