"""Tests for predicate-pushdown analysis."""

from repro.sqlparser import parse, parse_expression
from repro.udf.pushdown import (
    conjunct_is_pushable,
    pushable_conjuncts,
    resolve_alias,
)

COLUMNS = {"a", "b", "name"}


class TestConjunctPushability:
    def test_qualified_matching_alias(self):
        expr = parse_expression("t.a = 1")
        assert conjunct_is_pushable(expr, "t", COLUMNS, single_source=False)

    def test_qualified_other_alias(self):
        expr = parse_expression("u.a = 1")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=False)

    def test_unqualified_single_source(self):
        expr = parse_expression("a = 1")
        assert conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=False)

    def test_unqualified_unknown_column(self):
        expr = parse_expression("ghost = 1")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)

    def test_ingredient_not_pushable(self):
        expr = parse_expression("{{LLMMap('q', 't::a')}} = 'x'")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)

    def test_subquery_not_pushable(self):
        expr = parse_expression("a IN (SELECT a FROM u)")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)

    def test_constant_predicate_not_pushable(self):
        expr = parse_expression("1 = 1")
        assert not conjunct_is_pushable(expr, "t", COLUMNS, single_source=True)


class TestSelectLevel:
    def test_mixed_where(self):
        tree = parse(
            "SELECT * FROM t WHERE t.a = 1 AND {{LLMMap('q', 't::a')}} = 'x' "
            "AND t.b > 2"
        )
        conjuncts = pushable_conjuncts(tree, "t", COLUMNS)
        assert len(conjuncts) == 2

    def test_join_scope(self):
        tree = parse(
            "SELECT * FROM t JOIN u ON t.a = u.a "
            "WHERE t.a = 1 AND u.b = 2"
        )
        conjuncts = pushable_conjuncts(tree, "t", COLUMNS)
        assert len(conjuncts) == 1

    def test_no_where(self):
        tree = parse("SELECT * FROM t")
        assert pushable_conjuncts(tree, "t", COLUMNS) == []


class TestResolveAlias:
    def test_aliased(self):
        tree = parse("SELECT * FROM schools AS s JOIN frpm f ON s.c = f.c")
        assert resolve_alias(tree, "schools") == "s"
        assert resolve_alias(tree, "frpm") == "f"

    def test_bare_name(self):
        tree = parse("SELECT * FROM schools")
        assert resolve_alias(tree, "schools") == "schools"

    def test_missing(self):
        tree = parse("SELECT * FROM other")
        assert resolve_alias(tree, "schools") is None
        assert resolve_alias(None, "schools") is None
