"""Tests for embedding, similarity, and demonstration selection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.udf.fewshot import (
    DemonstrationPool,
    FewShotSelector,
    cosine_similarity,
    embed,
)


class TestEmbedding:
    def test_empty(self):
        assert embed("") == {}

    def test_bag_of_words(self):
        vector = embed("the cat the dog")
        assert set(vector) == {"the", "cat", "dog"}
        assert vector["the"] > vector["cat"]  # repeated term weighs more

    def test_case_insensitive(self):
        assert embed("Cat") == embed("cat")


class TestCosine:
    def test_identical_is_one(self):
        v = embed("driver code formula")
        assert cosine_similarity(v, v) == 1.0 or abs(cosine_similarity(v, v) - 1) < 1e-9

    def test_disjoint_is_zero(self):
        assert cosine_similarity(embed("alpha beta"), embed("gamma delta")) == 0.0

    def test_empty_is_zero(self):
        assert cosine_similarity({}, embed("a")) == 0.0

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=50), st.text(max_size=50))
    def test_symmetric_and_bounded(self, left, right):
        score = cosine_similarity(embed(left), embed(right))
        assert 0.0 <= score <= 1.0 + 1e-9
        assert score == cosine_similarity(embed(right), embed(left))


class TestDemonstrationPool:
    def test_pool_covers_every_column(self, formula_world):
        pool = DemonstrationPool(formula_world)
        questions = {demo.question for demo in pool.demonstrations}
        # one canonical question per generated column
        generated = sum(len(e.columns) for e in formula_world.expansions)
        assert len(questions) == generated

    def test_answers_come_from_truth(self, formula_world):
        pool = DemonstrationPool(formula_world)
        codes = [
            demo.answer
            for demo in pool.demonstrations
            if "driver code" in demo.question
        ]
        truth_codes = {
            entry["code"] for entry in formula_world.truth["driver_info"].values()
        }
        assert codes and set(codes) <= truth_codes


class TestSelector:
    def test_selects_relevant_attribute(self, formula_world):
        selector = FewShotSelector(DemonstrationPool(formula_world))
        demos = selector.select(
            "What is the three-letter driver code of this driver?", 3
        )
        assert len(demos) == 3
        assert all("code" in demo.question for demo in demos)

    def test_zero_count(self, formula_world):
        selector = FewShotSelector(DemonstrationPool(formula_world))
        assert selector.select("anything", 0) == []

    def test_deterministic(self, formula_world):
        selector = FewShotSelector(DemonstrationPool(formula_world))
        first = selector.select("nationality of the driver", 4)
        second = selector.select("nationality of the driver", 4)
        assert first == second
