"""Tests for token metering and pricing."""

from repro.llm.usage import PRICING_PER_MILLION, Usage, UsageMeter


class TestUsage:
    def test_addition(self):
        total = Usage(10, 5, 1) + Usage(20, 10, 2)
        assert total == Usage(30, 15, 3)

    def test_total_tokens(self):
        assert Usage(10, 5).total_tokens() == 15

    def test_cost_matches_paper_pricing(self):
        # the paper quotes $3 / $6 per million for GPT-3.5 Turbo
        usage = Usage(input_tokens=1_000_000, output_tokens=1_000_000)
        assert usage.cost_usd("gpt-3.5-turbo") == PRICING_PER_MILLION[
            "gpt-3.5-turbo"
        ][0] + PRICING_PER_MILLION["gpt-3.5-turbo"][1]

    def test_cost_unknown_model_is_zero(self):
        assert Usage(100, 100).cost_usd("nope") == 0.0


class TestUsageMeter:
    def test_record_accumulates(self):
        meter = UsageMeter()
        meter.record(10, 5)
        meter.record(20, 10, label="map")
        assert meter.total == Usage(30, 15, 2)
        assert meter.by_label["map"] == Usage(20, 10, 1)

    def test_merge(self):
        left, right = UsageMeter(), UsageMeter()
        left.record(1, 2, label="a")
        right.record(3, 4, label="a")
        right.record(5, 6, label="b")
        left.merge(right)
        assert left.total == Usage(9, 12, 3)
        assert left.by_label["a"] == Usage(4, 6, 2)

    def test_reset(self):
        meter = UsageMeter()
        meter.record(1, 1, label="x")
        meter.reset()
        assert meter.total == Usage()
        assert meter.by_label == {}
