"""Tests for token metering and pricing."""

import threading

from repro.llm.usage import PRICING_PER_MILLION, Usage, UsageMeter


class TestUsage:
    def test_addition(self):
        total = Usage(10, 5, 1) + Usage(20, 10, 2)
        assert total == Usage(30, 15, 3)

    def test_total_tokens(self):
        assert Usage(10, 5).total_tokens() == 15

    def test_cost_matches_paper_pricing(self):
        # the paper quotes $3 / $6 per million for GPT-3.5 Turbo
        usage = Usage(input_tokens=1_000_000, output_tokens=1_000_000)
        assert usage.cost_usd("gpt-3.5-turbo") == PRICING_PER_MILLION[
            "gpt-3.5-turbo"
        ][0] + PRICING_PER_MILLION["gpt-3.5-turbo"][1]

    def test_cost_unknown_model_is_zero(self):
        assert Usage(100, 100).cost_usd("nope") == 0.0


class TestUsageMeter:
    def test_record_accumulates(self):
        meter = UsageMeter()
        meter.record(10, 5)
        meter.record(20, 10, label="map")
        assert meter.total == Usage(30, 15, 2)
        assert meter.by_label["map"] == Usage(20, 10, 1)

    def test_merge(self):
        left, right = UsageMeter(), UsageMeter()
        left.record(1, 2, label="a")
        right.record(3, 4, label="a")
        right.record(5, 6, label="b")
        left.merge(right)
        assert left.total == Usage(9, 12, 3)
        assert left.by_label["a"] == Usage(4, 6, 2)

    def test_reset(self):
        meter = UsageMeter()
        meter.record(1, 1, label="x")
        meter.reset()
        assert meter.total == Usage()
        assert meter.by_label == {}

    def test_snapshot_is_consistent_copy(self):
        meter = UsageMeter()
        meter.record(1, 2, label="a")
        total, by_label = meter.snapshot()
        assert total == Usage(1, 2, 1)
        # the snapshot is a copy: later records don't leak into it
        meter.record(10, 20, label="b")
        assert total == Usage(1, 2, 1)
        assert "b" not in by_label

    def test_merge_while_other_is_recording(self):
        """Merging must read `other` under its lock.

        The pre-fix merge iterated ``other.by_label`` unlocked, so a
        concurrent record with a *fresh* label could grow the dict
        mid-iteration (RuntimeError) or tear total/by_label.  Recording
        under many distinct labels while merging repeatedly makes the
        unlocked iteration fail reliably.
        """
        source = UsageMeter()
        sink = UsageMeter()
        errors = []

        def produce(worker: int):
            for i in range(2000):
                source.record(1, 1, label=f"label-{worker}-{i}")

        def consume():
            try:
                while any(t.is_alive() for t in producers):
                    sink.merge(source)
            except RuntimeError as exc:  # pragma: no cover - the bug
                errors.append(exc)

        producers = [
            threading.Thread(target=produce, args=(w,)) for w in range(4)
        ]
        consumer = threading.Thread(target=consume)
        for t in producers:
            t.start()
        consumer.start()
        for t in producers:
            t.join()
        consumer.join()
        assert errors == []
        # one final merge into a fresh meter sees every record exactly once
        final = UsageMeter()
        final.merge(source)
        assert final.total == Usage(8000, 8000, 8000)

    def test_merged_snapshot_internally_consistent(self):
        """Labelled sub-totals of a merge always sum to the merged total."""
        source = UsageMeter()
        sink = UsageMeter()
        done = threading.Event()

        def produce():
            for i in range(2000):
                source.record(1, 1, label=f"label-{i % 7}")
            done.set()

        producer = threading.Thread(target=produce)
        producer.start()
        while not done.is_set():
            sink = UsageMeter()
            sink.merge(source)
            total, by_label = sink.snapshot()
            summed = Usage()
            for usage in by_label.values():
                summed = summed + usage
            assert summed == total
        producer.join()
