"""Tests for process-level LLM dispatch (`repro.llm.procpool`).

The contract: ``parallelism="processes"`` is byte-identical to the
thread path (results, Usage, cache stats, provenance), and a dying
worker surfaces as a retryable error with every remaining process
reaped — no orphans.
"""

import os
import signal

import pytest

from repro.errors import LLMError, TransientLLMError
from repro.harness.runner import GoldResults, run_udf
from repro.llm.procpool import ProcPoolClient, SharedProcessPool
from repro.obs import ProvenanceRecorder

QA_PROMPT = (
    "Answer the question with a single short value and no explanation.\n"
    "Database: superhero\n"
    "Question: Which comic book publisher published the superhero "
    "'Hellboy'?\n"
    "Answer:"
)


def _outcome_key(outcome):
    return (outcome.qid, outcome.correct, outcome.actual_rows, outcome.error)


class TestByteIdentity:
    def test_full_swan_processes_match_threads(self, swan):
        gold = GoldResults(swan)
        threads = run_udf(
            swan, "gpt-3.5-turbo", 0, gold=gold, workers=2,
            parallelism="threads",
        )
        processes = run_udf(
            swan, "gpt-3.5-turbo", 0, gold=gold, workers=2,
            parallelism="processes",
        )
        assert [_outcome_key(o) for o in threads.outcomes] == [
            _outcome_key(o) for o in processes.outcomes
        ]
        assert threads.usage == processes.usage
        assert threads.ex_by_db == processes.ex_by_db
        assert (threads.cache_hits, threads.cache_misses) == (
            processes.cache_hits, processes.cache_misses
        )

    def test_complete_many_matches_complete(self, superhero_world):
        with ProcPoolClient(
            superhero_world, "perfect", processes=2
        ) as client:
            one = client.complete(QA_PROMPT, label="qa")
            many = client.complete_many([QA_PROMPT] * 3, ["qa"] * 3)
        assert [r.text for r in many] == [one.text] * 3
        assert all(r.usage == one.usage for r in many)
        assert client.meter.total.calls == 4

    def test_complete_many_rejects_mismatched_labels(self, superhero_world):
        with ProcPoolClient(superhero_world, "perfect") as client:
            with pytest.raises(LLMError, match="labels"):
                client.complete_many([QA_PROMPT], [])


class TestSharedPool:
    def test_one_pool_serves_many_databases(self, swan):
        with SharedProcessPool(processes=2) as pool:
            hero = pool.client_for(swan.world("superhero"), "perfect")
            f1 = pool.client_for(swan.world("formula_1"), "perfect")
            assert hero.complete(QA_PROMPT, label="qa").text
            f1_prompt = QA_PROMPT.replace(
                "superhero", "formula_1"
            ).replace(
                "Which comic book publisher published the superhero "
                "'Hellboy'?",
                "In which country is the circuit 'Monza' located?",
            )
            assert f1.complete(f1_prompt, label="qa").text
            # both clients submit into the same executor — no second pool
            assert pool.executor() is pool.executor()

    def test_client_close_leaves_the_shared_pool_alive(self, swan):
        with SharedProcessPool(processes=1) as pool:
            client = pool.client_for(swan.world("superhero"), "perfect")
            first = client.complete(QA_PROMPT).text
            client.close()
            # the pool survives a client close; a fresh client still works
            again = pool.client_for(swan.world("superhero"), "perfect")
            assert again.complete(QA_PROMPT).text == first

    def test_pool_close_is_idempotent(self):
        pool = SharedProcessPool(processes=1)
        pool.close()
        pool.close()

    def test_db_workers_compose_with_processes(self, swan):
        """`db_workers` x shared pool: still byte-identical to threads."""
        databases = ["superhero", "formula_1"]
        gold = GoldResults(swan)
        threads = run_udf(
            swan, "gpt-3.5-turbo", 0, gold=gold, databases=databases,
            workers=2, db_workers=2, parallelism="threads",
        )
        processes = run_udf(
            swan, "gpt-3.5-turbo", 0, gold=gold, databases=databases,
            workers=2, db_workers=2, parallelism="processes",
        )
        assert [_outcome_key(o) for o in threads.outcomes] == [
            _outcome_key(o) for o in processes.outcomes
        ]
        assert threads.usage == processes.usage
        assert threads.ex_by_db == processes.ex_by_db
        assert (threads.cache_hits, threads.cache_misses) == (
            processes.cache_hits, processes.cache_misses
        )


class TestProvenance:
    def test_processes_record_complete_provenance(self, swan):
        prov = ProvenanceRecorder()
        run = run_udf(
            swan, "gpt-3.5-turbo", 0, databases=["superhero"],
            gold=GoldResults(swan), workers=2, parallelism="processes",
            provenance=prov,
        )
        cells = prov.cells()
        assert cells, "a process-dispatched run must still record cells"
        non_null = [cell for cell in cells if not cell.null]
        assert len(non_null) == run.keys_generated
        for cell in non_null:
            assert cell.call_id
            assert prov.call(cell.call_id) is not None


class TestWorkerFailure:
    def test_dead_worker_raises_transient_and_reaps_the_pool(
        self, superhero_world
    ):
        client = ProcPoolClient(superhero_world, "perfect", processes=2)
        try:
            client.complete(QA_PROMPT, label="qa")  # spin the pool up
            pool = client._pool
            assert pool is not None
            workers = list(pool._processes.values())
            assert workers
            os.kill(workers[0].pid, signal.SIGKILL)
            with pytest.raises(TransientLLMError, match="process pool broke"):
                for _ in range(50):  # the break is detected asynchronously
                    client.complete(QA_PROMPT, label="qa")
            # the client reaped the pool: no orphaned worker processes
            assert client._pool is None
            for process in workers:
                assert not process.is_alive()
        finally:
            client.close()

    def test_close_is_idempotent_and_restartable(self, superhero_world):
        client = ProcPoolClient(superhero_world, "perfect", processes=1)
        try:
            first = client.complete(QA_PROMPT).text
            client.close()
            client.close()
            assert client.complete(QA_PROMPT).text == first
        finally:
            client.close()
