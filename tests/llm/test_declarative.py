"""Tests for the declarative prompt toolkit."""

import pytest

from repro.llm.declarative import PromptSpec, PromptSpecError, Section, budgeted


class TestSection:
    def test_requires_kind_and_content(self):
        with pytest.raises(PromptSpecError):
            Section("", ("line",))
        with pytest.raises(PromptSpecError):
            Section("task", ())

    def test_rejects_embedded_newlines(self):
        with pytest.raises(PromptSpecError):
            Section("task", ("two\nlines",))

    def test_render(self):
        assert Section("task", ("a", "b")).render() == "a\nb"


class TestPromptSpec:
    def test_fluent_building_and_order(self):
        spec = PromptSpec().add_task("do it").add_rule("no explanation").add_cue("Answer:")
        assert list(spec.kinds()) == ["task", "rule", "cue"]
        assert spec.render() == "do it\nno explanation\nAnswer:"

    def test_by_kind(self):
        spec = PromptSpec().add_demonstration("d1").add_demonstration("d2").add_task("t")
        assert spec.demonstration_count() == 2
        assert len(spec.by_kind("task")) == 1

    def test_empty_render_rejected(self):
        with pytest.raises(PromptSpecError):
            PromptSpec().render()

    def test_validate_required_kinds(self):
        spec = PromptSpec().add_task("t")
        spec.validate(require=("task",))
        with pytest.raises(PromptSpecError, match="missing required"):
            spec.validate(require=("task", "target"))

    def test_token_estimate_matches_render(self):
        from repro.llm.tokenizer import count_tokens

        spec = PromptSpec().add_task("count these tokens precisely")
        assert spec.token_estimate() == count_tokens(spec.render())


class TestBudgeting:
    def _spec(self, demos):
        spec = PromptSpec().add_task("task statement here")
        for index in range(demos):
            spec.add_demonstration(f"demonstration number {index} with words")
        spec.add_target("the target entry")
        return spec

    def test_within_budget_untouched(self):
        spec = self._spec(3)
        assert budgeted(spec, 10_000) is spec

    def test_trims_later_demonstrations_first(self):
        spec = self._spec(5)
        smaller = budgeted(spec, spec.token_estimate() - 1)
        assert smaller.demonstration_count() < 5
        # earlier (most relevant) demos survive
        assert "number 0" in smaller.render()
        assert smaller.by_kind("task") and smaller.by_kind("target")

    def test_impossible_budget_raises(self):
        with pytest.raises(PromptSpecError):
            budgeted(self._spec(1), 1)


class TestHQDLIntegration:
    def test_row_prompt_is_a_spec(self, superhero_world):
        from repro.core.prompts import RowPromptBuilder

        builder = RowPromptBuilder(
            superhero_world, superhero_world.expansion("superhero_info"), shots=3
        )
        spec = builder.build_spec(("Batman", "Bruce Wayne"))
        assert spec.demonstration_count() == 3
        spec.validate(require=("task", "rule", "schema", "target", "cue"))
        assert spec.render() == builder.build(("Batman", "Bruce Wayne"))
