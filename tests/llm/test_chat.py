"""Tests for the simulated chat model (prompt parsing + completion)."""

import pytest

from repro.core.prompts import RowPromptBuilder
from repro.errors import LLMError
from repro.llm.chat import MockChatModel, parse_quoted_row, quote_field
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.swan.benchmark import load_benchmark


@pytest.fixture(scope="module")
def world():
    return load_benchmark().world("superhero")


@pytest.fixture(scope="module")
def perfect(world):
    return MockChatModel(KnowledgeOracle(world), get_profile("perfect"))


class TestRowProtocolHelpers:
    def test_quote_field_escapes(self):
        assert quote_field("it's") == "'it''s'"

    def test_parse_quoted_row(self):
        assert parse_quoted_row("'a','b,c','d'") == ["a", "b,c", "d"]

    def test_parse_preserves_question_marks(self):
        assert parse_quoted_row("'a',?,?") == ["a", "?", "?"]

    def test_parse_empty(self):
        assert parse_quoted_row("") == []


class TestRowCompletion:
    def test_perfect_row_completion(self, world, perfect):
        builder = RowPromptBuilder(world, world.expansion("superhero_info"))
        prompt = builder.build(("Batman", "Bruce Wayne"))
        response = perfect.complete(prompt)
        fields = parse_quoted_row(response.text)
        assert fields[:2] == ["Batman", "Bruce Wayne"]
        assert fields[5] == "DC Comics"  # publisher_name position
        assert len(fields) == builder.expected_field_count()

    def test_unknown_entity_gets_guesses(self, world, perfect):
        builder = RowPromptBuilder(world, world.expansion("superhero_info"))
        prompt = builder.build(("Nobody", "Nobody At All"))
        fields = parse_quoted_row(perfect.complete(prompt).text)
        assert fields[2:] == ["Unknown"] * 8

    def test_usage_metered(self, world):
        model = MockChatModel(KnowledgeOracle(world), get_profile("perfect"))
        builder = RowPromptBuilder(world, world.expansion("superhero_info"))
        model.complete(builder.build(("Batman", "Bruce Wayne")), label="test")
        assert model.meter.total.calls == 1
        assert model.meter.total.input_tokens > 50
        assert model.meter.by_label["test"].calls == 1

    def test_shots_detected_from_prompt(self, world):
        """More demonstrations in the prompt → at least as many correct cells."""
        model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-3.5-turbo"))
        expansion = world.expansion("superhero_info")
        keys = list(world.truth["superhero_info"])[:30]

        def correct_cells(shots):
            builder = RowPromptBuilder(world, expansion, shots=shots)
            count = 0
            for key in keys:
                fields = parse_quoted_row(model.complete(builder.build(key)).text)
                if len(fields) != builder.expected_field_count():
                    continue
                truth_row = [
                    KnowledgeOracle.format_value(
                        world.truth_value("superhero_info", key, c.name), c
                    )
                    for c in expansion.columns
                ]
                count += sum(1 for got, want in zip(fields[2:], truth_row) if got == want)
            return count

        assert correct_cells(5) >= correct_cells(0)

    def test_format_errors_occur_at_zero_shot(self, world):
        model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-3.5-turbo"))
        expansion = world.expansion("superhero_info")
        builder = RowPromptBuilder(world, expansion, shots=0)
        expected = builder.expected_field_count()
        bad = 0
        for key in world.truth["superhero_info"]:
            fields = parse_quoted_row(
                model.complete(builder.build(key)).text.splitlines()[-1]
            )
            if len(fields) != expected or "" in fields:
                bad += 1
        assert bad > 0  # the calibrated zero-shot rate is a few percent


class TestMapCompletion:
    def _map_prompt(self, question, keys):
        lines = [
            "Answer the question for each given key from the `superhero` database.",
            f"Question: {question}",
            "Keys:",
        ]
        for i, key in enumerate(keys, 1):
            lines.append(f"{i}. " + "|".join(quote_field(k) for k in key))
        lines.append("Return one line per key in the format `index. answer`.")
        lines.append("Answer:")
        return "\n".join(lines)

    def test_map_answers_in_order(self, perfect):
        prompt = self._map_prompt(
            "Which comic book publisher published this superhero?",
            [("Batman", "Bruce Wayne"), ("Spider-Man", "Peter Parker")],
        )
        text = perfect.complete(prompt).text
        assert text.splitlines() == ["1. DC Comics", "2. Marvel Comics"]

    def test_map_unknown_key(self, perfect):
        prompt = self._map_prompt(
            "Which comic book publisher published this superhero?",
            [("Ghost Nobody", "Null Void")],
        )
        assert perfect.complete(prompt).text == "1. Unknown"

    def test_map_resolves_attribute_by_keywords(self, perfect):
        prompt = self._map_prompt(
            "What is the eye color of this superhero?",
            [("Superman", "Clark Kent")],
        )
        assert perfect.complete(prompt).text == "1. Blue"


class TestQACompletion:
    def test_qa_answers_entity_question(self, perfect):
        prompt = (
            "Answer the question with a single short value and no explanation.\n"
            "Database: superhero\n"
            "Question: Which comic book publisher published the superhero "
            "'Hellboy'?\n"
            "Answer:"
        )
        assert perfect.complete(prompt).text == "Dark Horse Comics"

    def test_qa_without_entity_returns_unknown(self, perfect):
        prompt = (
            "Answer the question with a single short value and no explanation.\n"
            "Database: superhero\n"
            "Question: Which publisher is best?\n"
            "Answer:"
        )
        assert perfect.complete(prompt).text == "Unknown"


class TestDispatch:
    def test_unrecognised_prompt_raises(self, perfect):
        with pytest.raises(LLMError):
            perfect.complete("Hello there, write me a poem.")
