"""Byte-identity tests for the optimized hot paths (tentpole PR 6).

Every ``optimize`` fast path promises byte-identity with the legacy
code it replaces; these tests hold it to that over adversarial inputs:

- :func:`count_tokens_fast` vs the tokenize-then-count original;
- :func:`det_sample_fast` vs the hash-sort original (tie handling
  included);
- the oracle's vectorized value generator vs the per-cell path, across
  profiles, shot counts, and batch shapes;
- the single-pass map-prompt parser vs the two-scan original;
- a full pipeline run with ``optimize=False`` vs the default.
"""

import pytest

from repro.harness.runner import GoldResults, run_udf
from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile, list_profiles
from repro.llm.tokenizer import count_tokens, count_tokens_fast, tokenize_text
from repro.swan.worlds.util import det_sample, det_sample_fast

TOKEN_SAMPLES = [
    "",
    "a",
    "hello world",
    "Spider-Man (II)",
    "12345 678 9",
    "x" * 57,
    "9" * 31,
    "CamelCaseRuns and    spaces\t\ttabs\nnewlines",
    "mixed123abc456def",
    "émigré naïve — café",
    "a|b|c||d",
    "   leading and trailing   ",
    "!@#$%^&*()",
    "word1word word2word 33a44b",
]


class TestCountTokensFast:
    @pytest.mark.parametrize("text", TOKEN_SAMPLES)
    def test_matches_legacy(self, text):
        assert count_tokens_fast(text) == count_tokens(text)
        assert count_tokens_fast(text) == len(tokenize_text(text))

    def test_matches_on_benchmark_prompts(self, superhero_world):
        for expansion in superhero_world.expansions:
            for key in list(superhero_world.truth[expansion.name])[:20]:
                text = " ".join(str(part) for part in key)
                assert count_tokens_fast(text) == count_tokens(text)


class TestDetSampleFast:
    OPTIONS = [f"option {i}" for i in range(25)]

    @pytest.mark.parametrize("count", [0, 1, 5, 24, 25])
    def test_matches_legacy(self, count):
        parts = ("seed", 42, "x")
        assert det_sample_fast(self.OPTIONS, count, *parts) == det_sample(
            self.OPTIONS, count, *parts
        )

    def test_matches_without_parts(self):
        assert det_sample_fast(self.OPTIONS, 7) == det_sample(self.OPTIONS, 7)

    def test_rejects_oversampling(self):
        with pytest.raises(ValueError):
            det_sample_fast(self.OPTIONS, len(self.OPTIONS) + 1)

    def test_many_seeds(self):
        for seed in range(30):
            assert det_sample_fast(self.OPTIONS, 5, seed) == det_sample(
                self.OPTIONS, 5, seed
            )


class TestOracleFastPath:
    def test_generate_value_identical(self, superhero_world):
        slow = KnowledgeOracle(superhero_world, optimize=False)
        fast = KnowledgeOracle(superhero_world, optimize=True)
        profiles = [get_profile(name) for name in list_profiles()]
        checked = 0
        for expansion in superhero_world.expansions:
            keys = list(superhero_world.truth[expansion.name])
            for key in keys[:: max(1, len(keys) // 15)]:
                for column in expansion.columns:
                    for profile in profiles:
                        for shots in (0, 2):
                            for sc, bs in ((False, 1), (True, 5)):
                                args = (
                                    expansion.name, key, column.name,
                                    profile, shots,
                                )
                                assert slow.generate_value(
                                    *args, single_cell=sc, batch_size=bs
                                ) == fast.generate_value(
                                    *args, single_cell=sc, batch_size=bs
                                )
                                checked += 1
        assert checked > 100

    def test_map_generator_matches_per_cell(self, superhero_world):
        oracle = KnowledgeOracle(superhero_world, optimize=True)
        profile = get_profile("gpt-3.5-turbo")
        expansion = superhero_world.expansions[0]
        column = expansion.columns[0].name
        keys = list(superhero_world.truth[expansion.name])[:40]
        generate = oracle.map_value_generator(
            expansion.name, column, profile, 2, len(keys)
        )
        legacy = KnowledgeOracle(superhero_world, optimize=False)
        for key in keys:
            assert generate(key) == legacy.generate_value(
                expansion.name, key, column, profile, 2,
                single_cell=True, batch_size=len(keys),
            )


class TestMapPromptParserFast:
    def _model(self, superhero_world, optimize):
        return MockChatModel(
            KnowledgeOracle(superhero_world, optimize=optimize),
            get_profile("perfect"), optimize=optimize,
        )

    @pytest.mark.parametrize(
        "prompt",
        [
            (
                "Answer the question for each given key.\n"
                "Question: Which comic book publisher published this "
                "superhero?\n"
                "Keys:\n"
                "1. Batman|Bruce Wayne\n"
                "2. Spider-Man|Peter Parker\n"
                "Return one line per key in the format `index. answer`.\n"
                "Answer:"
            ),
            (
                "Example: demo\n"
                "Question: What is the eye color of this superhero?\n"
                "Keys:\n"
                "1. Superman|Clark Kent\n"
                "Answer:"
            ),
        ],
    )
    def test_fast_parse_matches_legacy_completion(
        self, superhero_world, prompt
    ):
        fast = self._model(superhero_world, True)
        slow = self._model(superhero_world, False)
        assert fast.complete(prompt).text == slow.complete(prompt).text
        assert fast.complete(prompt).usage == slow.complete(prompt).usage

    def test_fast_parse_components(self, superhero_world):
        model = self._model(superhero_world, True)
        prompt = (
            "Preamble Question: decoy is only matched on the first hit\n"
            "Keys:\n"
            "1. Batman|Bruce Wayne\n"
            "Answer:"
        )
        question, keys = model._parse_map_prompt_fast(prompt)
        assert question == model._line_after_marker(prompt, "Question:")
        assert keys == model._parse_map_keys(prompt)


class TestPipelineIdentity:
    def test_optimized_run_matches_legacy(self, swan):
        gold = GoldResults(swan)
        legacy = run_udf(
            swan, "gpt-3.5-turbo", 2, databases=["superhero"], gold=gold,
            optimize=False,
        )
        optimized = run_udf(
            swan, "gpt-3.5-turbo", 2, databases=["superhero"], gold=gold,
            optimize=True,
        )
        assert [
            (o.qid, o.correct, o.actual_rows, o.error)
            for o in legacy.outcomes
        ] == [
            (o.qid, o.correct, o.actual_rows, o.error)
            for o in optimized.outcomes
        ]
        assert legacy.usage == optimized.usage
        assert (legacy.cache_hits, legacy.cache_misses) == (
            optimized.cache_hits, optimized.cache_misses
        )
