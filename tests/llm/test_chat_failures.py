"""Behavioural tests for the simulated model's failure modes.

The paper attributes specific error classes to specific conditions:
format drift at zero shot (5.3), misalignment under batching (5.4),
fewer errors with demonstrations.  These tests verify the simulation
actually produces those behaviours at plausible rates.
"""

import pytest

from repro.core.prompts import RowPromptBuilder
from repro.llm.chat import MockChatModel, quote_field
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile

from tests.conftest import make_model


def map_prompt(question, keys, db="superhero"):
    lines = [
        f"Answer the question for each given key from the `{db}` database.",
        f"Question: {question}",
        "Keys:",
    ]
    for i, key in enumerate(keys, 1):
        lines.append(f"{i}. " + "|".join(quote_field(str(k)) for k in key))
    lines.append("Return one line per key in the format `index. answer`.")
    lines.append("Answer:")
    return "\n".join(lines)


class TestDeterminism:
    def test_same_prompt_same_completion(self, superhero_world):
        model_a = make_model(superhero_world, "gpt-3.5-turbo")
        model_b = make_model(superhero_world, "gpt-3.5-turbo")
        builder = RowPromptBuilder(
            superhero_world, superhero_world.expansion("superhero_info")
        )
        prompt = builder.build(("Batman", "Bruce Wayne"))
        assert model_a.complete(prompt).text == model_b.complete(prompt).text


class TestFormatErrorRates:
    @staticmethod
    def _malformed_fraction(world, model, shots):
        from repro.core.extraction import extract_row
        from repro.errors import ExtractionError

        builder = RowPromptBuilder(
            world, world.expansion("superhero_info"), shots=shots
        )
        bad = total = 0
        for key in world.truth["superhero_info"]:
            total += 1
            try:
                extract_row(
                    model.complete(builder.build(key)).text,
                    builder.expected_field_count(),
                )
            except ExtractionError:
                bad += 1
        return bad / total

    def test_errors_decrease_with_shots(self, superhero_world):
        model = make_model(superhero_world, "gpt-3.5-turbo")
        zero = self._malformed_fraction(superhero_world, model, 0)
        five = self._malformed_fraction(superhero_world, model, 5)
        assert zero >= five

    def test_zero_shot_rate_near_calibration(self, superhero_world):
        model = make_model(superhero_world, "gpt-3.5-turbo")
        rate = self._malformed_fraction(superhero_world, model, 0)
        calibrated = get_profile("gpt-3.5-turbo").format_error_rate(0)
        # 128 samples; allow generous sampling slack around the target
        assert abs(rate - calibrated) < 0.06

    def test_perfect_model_never_malformed(self, superhero_world):
        model = make_model(superhero_world)
        assert self._malformed_fraction(superhero_world, model, 0) == 0.0


class TestBatchMisalignment:
    def test_large_batches_sometimes_misalign(self, superhero_world):
        """Over many batched calls, skip/swap errors appear (Section 5.4)."""
        model = make_model(superhero_world, "gpt-3.5-turbo")
        keys = list(superhero_world.truth["superhero_info"])
        anomalies = 0
        question = "What is the gender of this superhero?"
        for start in range(0, len(keys) - 5, 5):
            batch = keys[start : start + 5]
            text = model.complete(map_prompt(question, batch)).text
            lines = text.splitlines()
            if len(lines) != len(batch):
                anomalies += 1
                continue
            values = [line.split(". ", 1)[-1] for line in lines]
            truths = [
                str(superhero_world.truth_value("superhero_info", k, "gender"))
                for k in batch
            ]
            # an empty answer is a skip; a swapped pair shows as two
            # adjacent answers that match each other's truth
            if "" in values:
                anomalies += 1
                continue
            for i in range(len(values) - 1):
                if (
                    values[i] != truths[i]
                    and values[i + 1] != truths[i + 1]
                    and values[i] == truths[i + 1]
                    and values[i + 1] == truths[i]
                ):
                    anomalies += 1
                    break
        assert anomalies > 0

    def test_single_key_batches_never_misalign(self, superhero_world):
        model = make_model(superhero_world, "gpt-3.5-turbo")
        question = "What is the gender of this superhero?"
        for key in list(superhero_world.truth["superhero_info"])[:30]:
            text = model.complete(map_prompt(question, [key])).text
            assert text.startswith("1. ")
            assert text.count("\n") == 0


class TestPreamble:
    def test_zero_shot_preambles_occur_and_are_recoverable(self, superhero_world):
        from repro.core.extraction import extract_row

        model = make_model(superhero_world, "gpt-3.5-turbo")
        builder = RowPromptBuilder(
            superhero_world, superhero_world.expansion("superhero_info"), shots=0
        )
        preambles = 0
        for key in superhero_world.truth["superhero_info"]:
            text = model.complete(builder.build(key)).text
            if text.startswith("Here is the completed row:"):
                preambles += 1
                # extraction skips the chatty line and still gets the row
                fields = extract_row(text, builder.expected_field_count())
                assert fields[0] == key[0]
        assert preambles > 0


class TestCrossWorldProtocols:
    @pytest.mark.parametrize(
        "world_name", ["superhero", "formula_1", "california_schools",
                       "european_football"]
    )
    def test_row_protocol_works_everywhere(self, swan, world_name):
        world = swan.world(world_name)
        model = make_model(world)
        for expansion in world.expansions:
            builder = RowPromptBuilder(world, expansion)
            key = next(iter(world.truth[expansion.name]))
            text = model.complete(builder.build(key)).text
            from repro.core.extraction import extract_row

            fields = extract_row(text, builder.expected_field_count())
            assert fields[: len(expansion.key_columns)] == [str(p) for p in key]
