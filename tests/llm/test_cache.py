"""Tests for the prompt cache and caching client."""

import pytest

from repro.llm.cache import CachingClient, PromptCache
from repro.llm.client import ScriptedClient


class TestPromptCache:
    def test_miss_then_hit(self):
        cache = PromptCache()
        assert cache.get("p") is None
        cache.put("p", "answer")
        assert cache.get("p") == "answer"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_exact_match_only(self):
        """Semantically equal but textually different prompts miss (5.5)."""
        cache = PromptCache()
        cache.put("Is the hero from Marvel?", "yes")
        assert cache.get("Does the hero come from Marvel?") is None

    def test_hit_rate(self):
        cache = PromptCache()
        assert cache.hit_rate() == 0.0
        cache.put("a", "1")
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate() == 0.5

    def test_clear(self):
        cache = PromptCache()
        cache.put("a", "1")
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0


class TestCachingClient:
    def test_second_call_costs_nothing(self):
        inner = ScriptedClient(["first"])
        client = CachingClient(inner)
        first = client.complete("prompt")
        second = client.complete("prompt")
        assert first.text == second.text == "first"
        assert first.usage.calls == 1
        assert second.usage.calls == 0
        assert second.usage.input_tokens == 0
        assert len(inner.prompts) == 1

    def test_distinct_prompts_both_reach_model(self):
        inner = ScriptedClient(["a", "b"])
        client = CachingClient(inner)
        assert client.complete("p1").text == "a"
        assert client.complete("p2").text == "b"
        assert len(inner.prompts) == 2

    def test_shared_cache_across_clients(self):
        cache = PromptCache()
        first = CachingClient(ScriptedClient(["x"]), cache)
        second = CachingClient(ScriptedClient([]), cache)
        first.complete("p")
        assert second.complete("p").text == "x"


class TestSingleFlightPoisoning:
    """A failing leader must not poison the followers waiting on it."""

    def _faulty(self, plan, answer="the answer"):
        from repro.llm.faults import FaultInjector, FaultPlan, FaultyClient

        inner = ScriptedClient({"p": answer})
        return CachingClient(FaultyClient(inner, FaultInjector(plan))), inner

    def test_followers_reattempt_after_leader_failure(self):
        """Leader's injected fault stays its own; followers still succeed.

        The fault plan faults attempt 1 of the prompt and passes attempt 2
        (seed chosen so the draws land that way), so whichever thread leads
        first fails — and every other thread must recover on its own
        rather than inherit that exception.
        """
        import threading
        from concurrent.futures import ThreadPoolExecutor

        from repro.errors import TransientLLMError
        from repro.llm.faults import FaultInjector, FaultPlan

        # find a seed where attempt 1 faults and attempt 2 is clean
        seed = next(
            s
            for s in range(100)
            if FaultInjector(plan := FaultPlan(transient=0.5, seed=s)).draw("p", 1)
            and FaultInjector(plan).draw("p", 2) is None
        )
        client, inner = self._faulty(FaultPlan(transient=0.5, seed=seed))

        threads = 8
        barrier = threading.Barrier(threads)

        def call(_):
            barrier.wait()
            try:
                return client.complete("p").text
            except TransientLLMError:
                return None

        with ThreadPoolExecutor(max_workers=threads) as pool:
            results = list(pool.map(call, range(threads)))

        failures = results.count(None)
        assert failures >= 1  # somebody led attempt 1 and ate the fault
        # every non-leading thread recovered with the real completion
        assert all(text == "the answer" for text in results if text is not None)
        # the model itself was called exactly once (attempt 2, the clean one)
        assert inner.prompts == ["p"]
        assert client.cache.entries == {"p": "the answer"}

    def test_retrying_leader_shields_all_followers(self):
        """With retries below the cache, no caller ever sees the fault."""
        import threading
        from concurrent.futures import ThreadPoolExecutor

        from repro.llm.faults import FaultInjector, FaultPlan, FaultyClient
        from repro.llm.parallel import SimulatedClock
        from repro.llm.resilience import RetryingClient, RetryPolicy

        inner = ScriptedClient({"p": "the answer"})
        faulty = FaultyClient(
            inner, FaultInjector(FaultPlan(rate_limit=0.6, seed=0))
        )
        retrying = RetryingClient(
            faulty,
            RetryPolicy(max_attempts=6, base_delay=0.01, jitter=0.0),
            clock=SimulatedClock(),
        )
        client = CachingClient(retrying)

        threads = 8
        barrier = threading.Barrier(threads)

        def call(_):
            barrier.wait()
            return client.complete("p").text

        with ThreadPoolExecutor(max_workers=threads) as pool:
            results = list(pool.map(call, range(threads)))

        assert results == ["the answer"] * threads
        assert inner.prompts == ["p"]  # still exactly one real completion

    def test_all_attempts_failing_gives_each_thread_its_own_error(self):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        from repro.errors import TransientLLMError
        from repro.llm.faults import FaultPlan

        client, inner = self._faulty(FaultPlan(transient=1.0))
        threads = 6
        barrier = threading.Barrier(threads)

        def call(_):
            barrier.wait()
            try:
                client.complete("p")
                return "ok"
            except TransientLLMError:
                return "error"

        with ThreadPoolExecutor(max_workers=threads) as pool:
            results = list(pool.map(call, range(threads)))

        assert results == ["error"] * threads
        assert inner.prompts == []  # faults fire before the model
        assert len(client.cache) == 0  # nothing bogus was cached

    def test_join_accounting_still_counts_hits(self):
        """Single-flight joins count as cache hits even after a failure."""
        from repro.errors import TransientLLMError
        from repro.llm.faults import FaultPlan

        client, _ = self._faulty(FaultPlan(transient=1.0))
        with pytest.raises(TransientLLMError):
            client.complete("p")
        assert client.cache.misses == 1
        assert client.cache.hits == 0
        assert client.single_flight_waits == 0


class TestPeek:
    """peek: the batcher's statistics-free prompt probe."""

    def test_returns_entry_without_counting_a_hit(self):
        cache = PromptCache()
        cache.put("p", "answer")
        assert cache.peek("p") == "answer"
        assert cache.hits == 0
        assert cache.misses == 0

    def test_absent_prompt_is_none_without_counting_a_miss(self):
        cache = PromptCache()
        assert cache.peek("p") is None
        assert cache.misses == 0
