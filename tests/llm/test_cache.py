"""Tests for the prompt cache and caching client."""

from repro.llm.cache import CachingClient, PromptCache
from repro.llm.client import ScriptedClient


class TestPromptCache:
    def test_miss_then_hit(self):
        cache = PromptCache()
        assert cache.get("p") is None
        cache.put("p", "answer")
        assert cache.get("p") == "answer"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_exact_match_only(self):
        """Semantically equal but textually different prompts miss (5.5)."""
        cache = PromptCache()
        cache.put("Is the hero from Marvel?", "yes")
        assert cache.get("Does the hero come from Marvel?") is None

    def test_hit_rate(self):
        cache = PromptCache()
        assert cache.hit_rate() == 0.0
        cache.put("a", "1")
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate() == 0.5

    def test_clear(self):
        cache = PromptCache()
        cache.put("a", "1")
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0


class TestCachingClient:
    def test_second_call_costs_nothing(self):
        inner = ScriptedClient(["first"])
        client = CachingClient(inner)
        first = client.complete("prompt")
        second = client.complete("prompt")
        assert first.text == second.text == "first"
        assert first.usage.calls == 1
        assert second.usage.calls == 0
        assert second.usage.input_tokens == 0
        assert len(inner.prompts) == 1

    def test_distinct_prompts_both_reach_model(self):
        inner = ScriptedClient(["a", "b"])
        client = CachingClient(inner)
        assert client.complete("p1").text == "a"
        assert client.complete("p2").text == "b"
        assert len(inner.prompts) == 2

    def test_shared_cache_across_clients(self):
        cache = PromptCache()
        first = CachingClient(ScriptedClient(["x"]), cache)
        second = CachingClient(ScriptedClient([]), cache)
        first.complete("p")
        assert second.complete("p").text == "x"
