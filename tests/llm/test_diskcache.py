"""Tests for the SQLite-backed persistent prompt cache."""

import sqlite3

import pytest

from repro.llm.client import ScriptedClient
from repro.llm.diskcache import (
    SCHEMA_VERSION,
    PersistentClient,
    PersistentPromptCache,
    cache_key,
)
from repro.llm.usage import Usage


class TestCacheKey:
    def test_distinct_configurations_never_collide(self):
        base = cache_key("gpt-4", 0, "hello")
        assert cache_key("gpt-4", 5, "hello") != base
        assert cache_key("gpt-3.5", 0, "hello") != base
        assert cache_key("gpt-4", 0, "hello ") != base

    def test_deterministic(self):
        assert cache_key("m", 1, "p") == cache_key("m", 1, "p")


class TestPersistentPromptCache:
    def test_round_trip(self, tmp_path):
        with PersistentPromptCache(tmp_path / "c.sqlite") as cache:
            assert cache.get("m", 0, "p") is None
            cache.put("m", 0, "p", "answer")
            assert cache.get("m", 0, "p") == "answer"
            assert cache.stats() == {
                "entries": 1, "hits": 1, "misses": 1, "stores": 1,
                "evictions": 0, "recovered": False,
            }

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with PersistentPromptCache(path) as cache:
            cache.put("m", 0, "p", "answer")
        with PersistentPromptCache(path) as cache:
            assert cache.get("m", 0, "p") == "answer"
            assert not cache.recovered

    def test_shots_and_model_namespace_entries(self, tmp_path):
        with PersistentPromptCache(tmp_path / "c.sqlite") as cache:
            cache.put("m", 0, "p", "zero-shot")
            cache.put("m", 5, "p", "five-shot")
            cache.put("other", 0, "p", "other-model")
            assert cache.get("m", 0, "p") == "zero-shot"
            assert cache.get("m", 5, "p") == "five-shot"
            assert cache.get("other", 0, "p") == "other-model"

    def test_corrupt_file_recovered(self, tmp_path):
        path = tmp_path / "c.sqlite"
        path.write_bytes(b"this is not a sqlite database, not even close")
        with PersistentPromptCache(path) as cache:
            assert cache.recovered
            cache.put("m", 0, "p", "answer")
            assert cache.get("m", 0, "p") == "answer"

    def test_version_bump_invalidates_entries(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with PersistentPromptCache(path) as cache:
            cache.put("m", 0, "p", "stale")
        # simulate a file written by an older cache generation
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET version = ?", (SCHEMA_VERSION - 1,))
        conn.commit()
        conn.close()
        with PersistentPromptCache(path) as cache:
            assert len(cache) == 0
            assert cache.get("m", 0, "p") is None
            assert not cache.recovered  # wiped, not recreated

    def test_lru_eviction_is_deterministic(self, tmp_path):
        with PersistentPromptCache(
            tmp_path / "c.sqlite", max_entries=2
        ) as cache:
            cache.put("m", 0, "a", "1")
            cache.put("m", 0, "b", "2")
            cache.get("m", 0, "a")  # refresh a: b becomes the LRU entry
            cache.put("m", 0, "c", "3")
            assert cache.get("m", 0, "b") is None
            assert cache.get("m", 0, "a") == "1"
            assert cache.get("m", 0, "c") == "3"
            assert cache.evictions == 1
            assert len(cache) == 2

    def test_max_entries_validated(self, tmp_path):
        with pytest.raises(ValueError):
            PersistentPromptCache(tmp_path / "c.sqlite", max_entries=0)

    def test_clear_resets_entries_and_counters(self, tmp_path):
        with PersistentPromptCache(tmp_path / "c.sqlite") as cache:
            cache.put("m", 0, "p", "answer")
            cache.get("m", 0, "p")
            cache.clear()
            assert len(cache) == 0
            assert cache.stats()["hits"] == 0
            assert cache.hit_rate() == 0.0


class TestPersistentClient:
    def _client(self, tmp_path):
        inner = ScriptedClient({"hello": "world"})
        cache = PersistentPromptCache(tmp_path / "c.sqlite")
        return PersistentClient(inner, cache, shots=0), inner, cache

    def test_miss_calls_through_and_stores(self, tmp_path):
        client, inner, cache = self._client(tmp_path)
        response = client.complete("hello there")
        assert response.text == "world"
        assert response.usage.calls == 1
        assert cache.stores == 1

    def test_hit_costs_zero_tokens(self, tmp_path):
        client, inner, cache = self._client(tmp_path)
        client.complete("hello there")
        response = client.complete("hello there")
        assert response.text == "world"
        assert response.usage == Usage()
        assert cache.hits == 1

    def test_warm_client_over_same_file_never_calls_upstream(self, tmp_path):
        client, _, cache = self._client(tmp_path)
        client.complete("hello there")
        cache.close()
        inner = ScriptedClient({"hello": "UPSTREAM CHANGED"})
        with PersistentPromptCache(tmp_path / "c.sqlite") as warm_cache:
            warm = PersistentClient(inner, warm_cache, shots=0)
            response = warm.complete("hello there")
            # served from disk: the changed upstream is never consulted
            assert response.text == "world"
            assert response.usage.calls == 0

    def test_model_name_forwarded(self, tmp_path):
        client, inner, _ = self._client(tmp_path)
        assert client.model_name == inner.model_name
