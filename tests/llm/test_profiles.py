"""Tests for the calibrated model profiles."""

import pytest

from repro.errors import LLMError
from repro.llm.profiles import (
    ModelProfile,
    get_profile,
    list_profiles,
    register_profile,
)
from repro.swan.base import KIND_NUMERIC, KIND_SELECTION


class TestRegistry:
    def test_known_profiles_present(self):
        names = list_profiles()
        assert "gpt-3.5-turbo" in names
        assert "gpt-4-turbo" in names
        assert "perfect" in names

    def test_unknown_raises(self):
        with pytest.raises(LLMError):
            get_profile("gpt-99")

    def test_register_custom(self):
        profile = ModelProfile(name="custom-test", base_zero_shot=0.5,
                               base_five_shot=0.7)
        register_profile(profile)
        assert get_profile("custom-test") is profile


class TestKnowledgeAccuracy:
    def test_monotone_in_shots(self):
        for name in ("gpt-3.5-turbo", "gpt-4-turbo"):
            profile = get_profile(name)
            for db in ("superhero", "formula_1", "california_schools",
                       "european_football"):
                accuracies = [
                    profile.knowledge_accuracy(db, "c", KIND_SELECTION, shots)
                    for shots in (0, 1, 3, 5)
                ]
                assert accuracies == sorted(accuracies), (name, db)

    def test_gpt4_at_least_gpt35_overall_base(self):
        gpt35, gpt4 = get_profile("gpt-3.5-turbo"), get_profile("gpt-4-turbo")
        assert gpt4.base_zero_shot >= gpt35.base_zero_shot
        assert gpt4.base_five_shot >= gpt35.base_five_shot

    def test_accuracy_bounded(self):
        profile = get_profile("gpt-4-turbo")
        acc = profile.knowledge_accuracy("california_schools", "city",
                                         KIND_SELECTION, 5)
        assert 0.0 <= acc <= profile.max_accuracy

    def test_numeric_kind_harder_than_selection(self):
        profile = get_profile("gpt-3.5-turbo")
        selection = profile.knowledge_accuracy("european_football", "x",
                                               KIND_SELECTION, 5)
        numeric = profile.knowledge_accuracy("european_football", "x",
                                             KIND_NUMERIC, 5)
        assert numeric < selection

    def test_single_cell_penalty(self):
        profile = get_profile("gpt-3.5-turbo")
        full = profile.knowledge_accuracy("superhero", "x", KIND_SELECTION, 0)
        single = profile.knowledge_accuracy("superhero", "x", KIND_SELECTION, 0,
                                            single_cell=True)
        assert single < full

    def test_batch_penalty_grows_with_batch(self):
        profile = get_profile("gpt-3.5-turbo")
        accs = [
            profile.knowledge_accuracy("superhero", "x", KIND_SELECTION, 0,
                                       batch_size=b)
            for b in (1, 5, 20)
        ]
        assert accs[0] > accs[1] > accs[2]

    def test_single_cell_shot_gain_dampens_improvement(self):
        profile = get_profile("gpt-3.5-turbo")
        full_gain = (
            profile.knowledge_accuracy("superhero", "x", KIND_SELECTION, 5)
            - profile.knowledge_accuracy("superhero", "x", KIND_SELECTION, 0)
        )
        cell_gain = (
            profile.knowledge_accuracy("superhero", "x", KIND_SELECTION, 5,
                                       single_cell=True)
            - profile.knowledge_accuracy("superhero", "x", KIND_SELECTION, 0,
                                         single_cell=True)
        )
        assert cell_gain < full_gain

    def test_interpolation_between_anchor_shot_counts(self):
        profile = get_profile("gpt-3.5-turbo")
        two_shot = profile.knowledge_accuracy("superhero", "x", KIND_SELECTION, 2)
        one_shot = profile.knowledge_accuracy("superhero", "x", KIND_SELECTION, 1)
        three_shot = profile.knowledge_accuracy("superhero", "x", KIND_SELECTION, 3)
        assert one_shot <= two_shot <= three_shot

    def test_beyond_five_shots_clamps(self):
        profile = get_profile("gpt-3.5-turbo")
        assert profile.knowledge_accuracy(
            "superhero", "x", KIND_SELECTION, 10
        ) == profile.knowledge_accuracy("superhero", "x", KIND_SELECTION, 5)


class TestFormatErrors:
    def test_rate_decreases_with_shots(self):
        for name in ("gpt-3.5-turbo", "gpt-4-turbo"):
            profile = get_profile(name)
            assert profile.format_error_rate(0) > profile.format_error_rate(5)

    def test_perfect_model_never_errs(self):
        perfect = get_profile("perfect")
        assert perfect.format_error_rate(0) == 0.0
        assert perfect.knowledge_accuracy("superhero", "x", KIND_SELECTION, 0) == 1.0
