"""Concurrency regression tests for the parallel dispatch subsystem.

The guarantees under test, per ISSUE 1:

- single-flight: N threads hammering one CachingClient + PromptCache
  produce exactly one upstream call per unique prompt;
- UsageMeter totals are exact under contention;
- the dispatcher preserves prompt order, captures per-call errors, and
  dedups duplicate prompts within a dispatch;
- the simulated clock reproduces list-scheduling makespans.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import LLMError
from repro.llm.cache import CachingClient, PromptCache
from repro.llm.client import ChatResponse, ScriptedClient
from repro.llm.parallel import (
    DelayedClient,
    ParallelDispatcher,
    SimulatedClock,
    SimulatedLatencyClient,
)
from repro.llm.batching import LatencyModel
from repro.llm.usage import Usage, UsageMeter


class CountingClient:
    """Echoes each prompt after a small delay, counting upstream calls."""

    model_name = "counting"

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.calls_by_prompt: dict[str, int] = {}
        self._lock = threading.Lock()

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        if self.delay:
            time.sleep(self.delay)
        with self._lock:
            self.calls_by_prompt[prompt] = self.calls_by_prompt.get(prompt, 0) + 1
        return ChatResponse(f"echo:{prompt}", Usage(1, 1, 1))


class FailingClient:
    """Raises LLMError for prompts containing 'bad'."""

    model_name = "failing"

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        if "bad" in prompt:
            raise LLMError(f"scripted failure for {prompt!r}")
        return ChatResponse(f"ok:{prompt}", Usage(1, 1, 1))


class TestSingleFlight:
    def test_one_upstream_call_per_unique_prompt(self):
        """16 threads x 4 prompts -> exactly 4 upstream calls."""
        inner = CountingClient(delay=0.02)
        cache = PromptCache()
        client = CachingClient(inner, cache)
        prompts = [f"p{i}" for i in range(4)]
        barrier = threading.Barrier(16)

        def hammer(thread_index: int) -> list[str]:
            barrier.wait()
            return [client.complete(p).text for p in prompts]

        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(hammer, range(16)))

        assert inner.calls_by_prompt == {p: 1 for p in prompts}
        expected = [f"echo:{p}" for p in prompts]
        assert all(result == expected for result in results)
        # every complete() counted exactly one hit or miss: 16*4 lookups,
        # one miss per unique prompt, the rest hits — as if sequential
        assert cache.misses == 4
        assert cache.hits == 16 * 4 - 4
        assert client.single_flight_waits > 0  # the barrier forced overlap

    def test_followers_pay_zero_tokens(self):
        inner = CountingClient(delay=0.05)
        client = CachingClient(inner)
        barrier = threading.Barrier(8)

        def call(_: int) -> ChatResponse:
            barrier.wait()
            return client.complete("shared prompt")

        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(call, range(8)))

        paid = [r for r in responses if r.usage.calls]
        free = [r for r in responses if not r.usage.calls]
        assert len(paid) == 1
        assert len(free) == 7
        assert {r.text for r in responses} == {"echo:shared prompt"}

    def test_leader_error_propagates_to_followers(self):
        client = CachingClient(FailingClient())
        barrier = threading.Barrier(4)
        errors: list[Exception] = []
        lock = threading.Lock()

        def call(_: int) -> None:
            barrier.wait()
            try:
                client.complete("a bad prompt")
            except LLMError as exc:
                with lock:
                    errors.append(exc)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(call, range(4)))
        assert len(errors) == 4
        # a failed flight is not cached: the next call retries upstream
        with pytest.raises(LLMError):
            client.complete("a bad prompt")


class TestUsageMeterContention:
    def test_totals_exact_under_contention(self):
        meter = UsageMeter()
        threads, per_thread = 8, 200
        barrier = threading.Barrier(threads)

        def record(thread_index: int) -> None:
            barrier.wait()
            for _ in range(per_thread):
                meter.record(3, 5, label=f"t{thread_index % 2}")

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(record, range(threads)))

        calls = threads * per_thread
        assert meter.total == Usage(3 * calls, 5 * calls, calls)
        by_label = meter.by_label
        assert by_label["t0"] + by_label["t1"] == meter.total


class TestParallelDispatcher:
    def test_results_in_prompt_order(self):
        client = CountingClient(delay=0.005)
        dispatcher = ParallelDispatcher(workers=8)
        prompts = [f"p{i}" for i in range(20)]
        outcomes = dispatcher.dispatch(client, prompts)
        assert [o.text for o in outcomes] == [f"echo:p{i}" for i in range(20)]

    def test_error_capture_does_not_abort_siblings(self):
        dispatcher = ParallelDispatcher(workers=4)
        prompts = ["fine one", "a bad one", "fine two"]
        outcomes = dispatcher.dispatch(FailingClient(), prompts)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, LLMError)
        assert outcomes[1].text is None

    def test_propagate_mode_raises_first_error_in_prompt_order(self):
        dispatcher = ParallelDispatcher(workers=4)
        with pytest.raises(LLMError, match="bad early"):
            dispatcher.dispatch(
                FailingClient(),
                ["ok", "bad early", "bad late"],
                capture_errors=False,
            )

    def test_duplicate_prompts_dispatched_once(self):
        client = CountingClient()
        dispatcher = ParallelDispatcher(workers=4)
        outcomes = dispatcher.dispatch(client, ["same", "same", "other", "same"])
        assert client.calls_by_prompt == {"same": 1, "other": 1}
        assert [o.text for o in outcomes] == [
            "echo:same", "echo:same", "echo:other", "echo:same",
        ]
        # the copies are free; only the first occurrence paid tokens
        paid = [o for o in outcomes if o.response.usage.calls]
        assert len(paid) == 2

    def test_per_prompt_labels(self):
        recorded: list[str] = []
        lock = threading.Lock()

        class LabelClient:
            model_name = "labels"

            def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
                with lock:
                    recorded.append(label)
                return ChatResponse("x", Usage(1, 1, 1))

        dispatcher = ParallelDispatcher(workers=2)
        dispatcher.dispatch(LabelClient(), ["a", "b"], labels=["la", "lb"])
        assert sorted(recorded) == ["la", "lb"]
        with pytest.raises(ValueError):
            dispatcher.dispatch(LabelClient(), ["a", "b"], labels=["only-one"])

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ParallelDispatcher(workers=0)

    def test_empty_dispatch(self):
        assert ParallelDispatcher(workers=4).dispatch(CountingClient(), []) == []


class TestSimulatedClock:
    def test_sequential_is_sum(self):
        clock = SimulatedClock(workers=1)
        for duration in (1.0, 2.0, 3.0):
            clock.advance(duration)
        assert clock.makespan() == pytest.approx(6.0)
        assert clock.calls == 3

    def test_parallel_balances_load(self):
        clock = SimulatedClock(workers=2)
        for duration in (1.0, 1.0, 1.0, 1.0):
            clock.advance(duration)
        assert clock.makespan() == pytest.approx(2.0)

    def test_reset(self):
        clock = SimulatedClock(workers=2)
        clock.advance(5.0)
        clock.reset()
        assert clock.makespan() == 0.0
        assert clock.calls == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedClock(workers=0)
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_latency_client_advances_only_paid_calls(self):
        clock = SimulatedClock(workers=1)
        model = LatencyModel(base_seconds=1.0, per_input_token=0, per_output_token=0)
        inner = CachingClient(CountingClient())
        client = SimulatedLatencyClient(inner, clock, model)
        client.complete("p")   # paid: advances 1s
        client.complete("p")   # cache hit: free in time too
        assert clock.makespan() == pytest.approx(1.0)
        assert clock.calls == 1


class TestDelayedClient:
    def test_sleeps_and_counts(self):
        client = DelayedClient(ScriptedClient(["one"]), delay_seconds=0.01)
        start = time.perf_counter()
        response = client.complete("p")
        assert time.perf_counter() - start >= 0.01
        assert response.text == "one"
        assert client.upstream_calls == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayedClient(ScriptedClient([]), delay_seconds=-0.1)
