"""Tests for the call-transcript recorder."""

from repro.llm.client import ScriptedClient
from repro.llm.transcript import TranscriptRecorder, load_transcript


class TestRecording:
    def test_records_calls_in_memory(self):
        recorder = TranscriptRecorder(ScriptedClient(["one", "two"]))
        recorder.complete("first prompt", label="a")
        recorder.complete("second prompt", label="b")
        assert len(recorder) == 2
        assert recorder.entries[0].prompt == "first prompt"
        assert recorder.entries[1].completion == "two"

    def test_by_label(self):
        recorder = TranscriptRecorder(ScriptedClient(["x", "y", "z"]))
        recorder.complete("p1", label="map")
        recorder.complete("p2", label="qa")
        recorder.complete("p3", label="map")
        assert len(recorder.by_label("map")) == 2

    def test_token_counts_recorded(self):
        recorder = TranscriptRecorder(ScriptedClient(["short"]))
        recorder.complete("one two three")
        entry = recorder.entries[0]
        # "one"=1, "two"=1, "three"=2 subword tokens
        assert entry.input_tokens == 4
        assert entry.output_tokens >= 1

    def test_memory_can_be_disabled(self, tmp_path):
        recorder = TranscriptRecorder(
            ScriptedClient(["x"]),
            path=tmp_path / "t.jsonl",
            keep_in_memory=False,
        )
        recorder.complete("p")
        assert recorder.entries == []
        assert len(recorder) == 1


class TestFileRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "calls.jsonl"
        recorder = TranscriptRecorder(ScriptedClient(["a", "b"]), path=path)
        recorder.complete("p1", label="x")
        recorder.complete("p2", label="y")
        entries = load_transcript(path)
        assert [e.prompt for e in entries] == ["p1", "p2"]
        assert entries[0].label == "x"

    def test_truncates_previous_transcript(self, tmp_path):
        path = tmp_path / "calls.jsonl"
        first = TranscriptRecorder(ScriptedClient(["a"]), path=path)
        first.complete("old")
        second = TranscriptRecorder(ScriptedClient(["b"]), path=path)
        second.complete("new")
        entries = load_transcript(path)
        assert len(entries) == 1
        assert entries[0].prompt == "new"


class TestPipelineIntegration:
    def test_wraps_mock_model(self, superhero_world, tmp_path):
        from repro.core import HQDL
        from tests.conftest import make_model

        recorder = TranscriptRecorder(
            make_model(superhero_world), path=tmp_path / "hqdl.jsonl"
        )
        pipeline = HQDL(superhero_world, recorder, shots=0)
        pipeline.generate_table("superhero_info")
        entries = load_transcript(tmp_path / "hqdl.jsonl")
        assert len(entries) == len(superhero_world.truth["superhero_info"])
        assert all("Target Entry:" in e.prompt for e in entries)
