"""Tests for the approximate tokenizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.tokenizer import SUBWORD_LEN, count_tokens, tokenize_text


class TestTokenize:
    def test_empty(self):
        assert tokenize_text("") == []
        assert count_tokens("") == 0

    def test_simple_words(self):
        assert tokenize_text("the cat") == ["the", "cat"]

    def test_long_words_split(self):
        tokens = tokenize_text("internationalization")
        assert all(len(t) <= SUBWORD_LEN for t in tokens)
        assert "".join(tokens) == "internationalization"

    def test_digits_grouped(self):
        assert tokenize_text("1234567") == ["123", "456", "7"]

    def test_punctuation_separate(self):
        assert tokenize_text("a,b") == ["a", ",", "b"]

    def test_mixed_prompt(self):
        text = "The columns are: `superhero_name`,`full_name`"
        assert count_tokens(text) > 8


class TestDeterminismAndMonotonicity:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=200))
    def test_deterministic(self, text):
        assert tokenize_text(text) == tokenize_text(text)

    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=100), st.text(max_size=100))
    def test_concatenation_superadditive_with_separator(self, left, right):
        # Joining with whitespace can never produce fewer tokens than the
        # parts alone (whitespace never merges pieces).
        combined = count_tokens(left + " " + right)
        assert combined >= count_tokens(left)
        assert combined >= count_tokens(right)
        assert combined == count_tokens(left) + count_tokens(right)

    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=200))
    def test_token_count_bounded_by_length(self, text):
        assert count_tokens(text) <= max(1, len(text))
