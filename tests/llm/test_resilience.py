"""Tests for retries, backoff, circuit breaking, and deadlines.

Every waiting assertion here runs on a :class:`SimulatedClock` — the
backoff schedules below are *measured* as virtual timestamps, and the
whole file sleeps zero real seconds.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    CircuitOpenError,
    LLMError,
    RateLimitError,
    RetryBudgetExceededError,
    TransientLLMError,
)
from repro.llm.client import ChatResponse, ScriptedClient
from repro.llm.oracle import stable_uniform
from repro.llm.parallel import SimulatedClock
from repro.llm.resilience import (
    CircuitBreaker,
    Deadline,
    MonotonicClock,
    ResilienceReport,
    RetryingClient,
    RetryPolicy,
)
from repro.llm.usage import Usage


class FailNTimes:
    """A client that raises ``error`` for the first N calls, then answers."""

    def __init__(self, failures: int, error: Exception | None = None) -> None:
        self.remaining = failures
        self.error = error if error is not None else TransientLLMError("boom")
        self.model_name = "flaky"
        self.calls = 0

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error
        return ChatResponse("ok", Usage(1, 1, 1))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_exponential_schedule_without_jitter(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=30.0, jitter=0.0)
        assert [policy.delay_for("p", n) for n in (1, 2, 3, 4)] == [
            1.0, 2.0, 4.0, 8.0,
        ]

    def test_cap_applies(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=5.0, jitter=0.0)
        assert policy.delay_for("p", 3) == 5.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=2.0, multiplier=1.0, jitter=0.25, seed=9)
        first = policy.delay_for("the prompt", 1)
        assert first == policy.delay_for("the prompt", 1)  # pure function
        assert 1.5 <= first <= 2.5
        # the exact value is the documented formula
        draw = stable_uniform("backoff", 9, "the prompt", 1)
        assert first == pytest.approx(2.0 * (1.0 + 0.25 * (2.0 * draw - 1.0)))
        # different prompts/attempts decorrelate
        assert policy.delay_for("other", 1) != first

    def test_retry_after_is_a_lower_bound(self):
        policy = RetryPolicy(base_delay=0.5, jitter=0.0)
        assert policy.delay_for("p", 1, retry_after=10.0) == 10.0
        assert policy.delay_for("p", 1, retry_after=0.1) == 0.5


class TestRetryingClient:
    def test_measured_backoff_schedule(self):
        """The virtual timestamps of a 3-failure call are exact."""
        clock = SimulatedClock()
        policy = RetryPolicy(
            max_attempts=4, base_delay=1.0, multiplier=2.0, jitter=0.0
        )
        client = RetryingClient(FailNTimes(3), policy, clock=clock)
        response = client.complete("p")
        assert response.text == "ok"
        # slept 1.0 + 2.0 + 4.0 virtual seconds, nothing more
        assert clock.makespan() == pytest.approx(7.0)
        assert client.report.as_dict()["retries"] == 3

    def test_jittered_schedule_matches_policy_exactly(self):
        clock = SimulatedClock()
        policy = RetryPolicy(
            max_attempts=4, base_delay=1.0, multiplier=2.0, jitter=0.2, seed=5
        )
        client = RetryingClient(FailNTimes(3), policy, clock=clock)
        client.complete("p")
        expected = sum(policy.delay_for("p", n) for n in (1, 2, 3))
        assert clock.makespan() == pytest.approx(expected)

    def test_retry_after_hint_stretches_the_wait(self):
        clock = SimulatedClock()
        policy = RetryPolicy(max_attempts=2, base_delay=0.5, jitter=0.0)
        error = RateLimitError("throttled", retry_after=9.0)
        client = RetryingClient(FailNTimes(1, error), policy, clock=clock)
        client.complete("p")
        assert clock.makespan() == pytest.approx(9.0)

    def test_budget_exhaustion_wraps_the_last_error(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        client = RetryingClient(
            FailNTimes(99), policy, clock=SimulatedClock()
        )
        with pytest.raises(RetryBudgetExceededError) as excinfo:
            client.complete("p")
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, TransientLLMError)
        ledger = client.report.as_dict()
        assert ledger["attempts"] == 3
        assert ledger["retries"] == 2
        assert ledger["exhausted"] == 1
        assert client.report.is_accounted()

    def test_non_transient_errors_never_retry(self):
        client = RetryingClient(
            ScriptedClient({}), RetryPolicy(max_attempts=5), clock=SimulatedClock()
        )
        with pytest.raises(LLMError):
            client.complete("unscripted prompt")
        ledger = client.report.as_dict()
        assert ledger == {**ledger, "attempts": 1, "fatal": 1, "retries": 0}
        assert client.report.is_accounted()

    def test_deadline_stops_retrying_early(self):
        clock = SimulatedClock()
        policy = RetryPolicy(max_attempts=10, base_delay=5.0, jitter=0.0)
        client = RetryingClient(
            FailNTimes(99), policy, clock=clock, deadline_seconds=4.0
        )
        with pytest.raises(RetryBudgetExceededError) as excinfo:
            client.complete("p")
        assert "deadline" in str(excinfo.value)
        assert clock.makespan() == 0.0  # gave up instead of sleeping past it
        assert client.report.is_accounted()

    def test_success_costs_no_virtual_time(self):
        clock = SimulatedClock()
        client = RetryingClient(FailNTimes(0), clock=clock)
        client.complete("p")
        assert clock.makespan() == 0.0
        assert client.report.as_dict()["successes"] == 1


class TestDeadline:
    def test_remaining_counts_down_on_the_clock(self):
        clock = SimulatedClock()
        deadline = Deadline(10.0, clock)
        assert deadline.remaining() == pytest.approx(10.0)
        clock.sleep(4.0)
        assert deadline.remaining() == pytest.approx(6.0)
        assert not deadline.expired
        clock.sleep(7.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0.0, SimulatedClock())


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = SimulatedClock()
        defaults = dict(failure_threshold=3, cooldown=10.0, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def test_state_transition_table(self):
        """closed --3 failures--> open --cooldown--> half-open --ok--> closed."""
        breaker, clock = self._breaker()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # under threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.before_call()
        assert excinfo.value.retry_after == pytest.approx(10.0)
        clock.sleep(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.before_call()  # the probe is admitted
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # streak broken

    def test_half_open_failure_reopens(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.sleep(10.0)
        breaker.before_call()
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_half_open_admits_limited_probes(self):
        breaker, clock = self._breaker(half_open_probes=2)
        for _ in range(3):
            breaker.record_failure()
        clock.sleep(10.0)
        breaker.before_call()
        breaker.before_call()
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # third concurrent probe rejected

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)

    def test_trips_feed_the_report(self):
        report = ResilienceReport()
        breaker, _ = self._breaker(report=report)
        for _ in range(3):
            breaker.record_failure()
        assert report.as_dict()["breaker_trips"] == 1


class TestRetryingClientWithBreaker:
    def test_open_breaker_short_circuits_then_recovers(self):
        """Calls fail fast while open, then flow again through half-open."""
        clock = SimulatedClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=60.0, clock=clock)
        policy = RetryPolicy(max_attempts=1)
        upstream = FailNTimes(2)
        client = RetryingClient(
            upstream, policy, clock=clock, breaker=breaker
        )
        # two exhausted attempts trip the breaker
        for _ in range(2):
            with pytest.raises(RetryBudgetExceededError):
                client.complete("p")
        assert breaker.state == CircuitBreaker.OPEN
        # while open: short-circuited without touching the upstream
        calls_before = upstream.calls
        with pytest.raises(CircuitOpenError):
            client.complete("p")
        assert upstream.calls == calls_before
        assert client.report.as_dict()["short_circuits"] == 1
        # after the cooldown the probe goes through and closes the breaker
        clock.sleep(60.0)
        assert client.complete("p").text == "ok"
        assert breaker.state == CircuitBreaker.CLOSED
        assert client.report.is_accounted()


class TestMonotonicClock:
    def test_now_advances(self):
        clock = MonotonicClock()
        first = clock.now()
        clock.sleep(0.0)  # zero-second sleep must not actually block
        assert clock.now() >= first
