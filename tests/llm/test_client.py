"""Tests for the client protocol and test doubles."""

import pytest

from repro.errors import LLMError
from repro.llm.client import ChatClient, ScriptedClient


class TestScriptedClient:
    def test_queue_mode(self):
        client = ScriptedClient(["one", "two"])
        assert client.complete("a").text == "one"
        assert client.complete("b").text == "two"
        with pytest.raises(LLMError):
            client.complete("c")

    def test_dict_exact_match(self):
        client = ScriptedClient({"the prompt": "answer"})
        assert client.complete("the prompt").text == "answer"

    def test_dict_substring_match(self):
        client = ScriptedClient({"needle": "found"})
        assert client.complete("hay needle stack").text == "found"

    def test_records_prompts_and_usage(self):
        client = ScriptedClient(["hello world"])
        response = client.complete("two words")
        assert client.prompts == ["two words"]
        # "two" = 1 subword token, "words" = 2; "hello world" = 2 + 2
        assert response.usage.input_tokens == 3
        assert response.usage.output_tokens == 4

    def test_satisfies_protocol(self):
        assert isinstance(ScriptedClient([]), ChatClient)
