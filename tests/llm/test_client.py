"""Tests for the client protocol and test doubles."""

import pytest

from repro.errors import LLMError
from repro.llm.client import ChatClient, ScriptedClient


class TestScriptedClient:
    def test_queue_mode(self):
        client = ScriptedClient(["one", "two"])
        assert client.complete("a").text == "one"
        assert client.complete("b").text == "two"
        with pytest.raises(LLMError):
            client.complete("c")

    def test_dict_exact_match(self):
        client = ScriptedClient({"the prompt": "answer"})
        assert client.complete("the prompt").text == "answer"

    def test_dict_substring_match(self):
        client = ScriptedClient({"needle": "found"})
        assert client.complete("hay needle stack").text == "found"

    def test_records_prompts_and_usage(self):
        client = ScriptedClient(["hello world"])
        response = client.complete("two words")
        assert client.prompts == ["two words"]
        # "two" = 1 subword token, "words" = 2; "hello world" = 2 + 2
        assert response.usage.input_tokens == 3
        assert response.usage.output_tokens == 4

    def test_satisfies_protocol(self):
        assert isinstance(ScriptedClient([]), ChatClient)

    def test_longest_substring_key_wins(self):
        """Among several matching keys, the most specific one answers."""
        client = ScriptedClient(
            {"height": "generic", "height in centimeters": "specific"}
        )
        prompt = "What is the height in centimeters of this player?"
        assert client.complete(prompt).text == "specific"
        # insertion order must not matter
        reversed_client = ScriptedClient(
            {"height in centimeters": "specific", "height": "generic"}
        )
        assert reversed_client.complete(prompt).text == "specific"
        # a prompt matching only the short key still resolves
        assert client.complete("What is the height?").text == "generic"

    def test_equal_length_keys_keep_insertion_order(self):
        client = ScriptedClient({"abc": "first", "xyz": "second"})
        assert client.complete("abc and xyz").text == "first"

    def test_prompt_recording_is_thread_safe(self):
        """Concurrent completes lose no prompt records (dispatcher-safe)."""
        import threading
        from concurrent.futures import ThreadPoolExecutor

        client = ScriptedClient({"prompt": "answer"})
        threads, per_thread = 8, 50
        barrier = threading.Barrier(threads)

        def hammer(thread_index: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                client.complete(f"prompt {thread_index}-{i}")

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(hammer, range(threads)))

        assert len(client.prompts) == threads * per_thread
        assert len(set(client.prompts)) == threads * per_thread

    def test_queue_consumption_is_thread_safe(self):
        """Each scripted answer is handed out exactly once under threads."""
        from concurrent.futures import ThreadPoolExecutor

        answers = [f"answer-{i}" for i in range(100)]
        client = ScriptedClient(list(answers))
        with ThreadPoolExecutor(max_workers=8) as pool:
            texts = [
                future.result().text
                for future in [
                    pool.submit(client.complete, f"p{i}") for i in range(100)
                ]
            ]
        assert sorted(texts) == sorted(answers)

    def test_queue_pairing_survives_an_8_thread_hammer(self):
        """prompts[i] is provably paired with the answer it consumed.

        Regression for a race where prompt recording and queue popping
        were separate steps: two threads could record their prompts in
        one order and pop answers in the other, silently mispairing
        :attr:`ScriptedClient.calls`.  Recording is now atomic with the
        pop, so the i-th recorded prompt always owns the i-th answer.
        """
        import threading
        from concurrent.futures import ThreadPoolExecutor

        total = 200
        answers = [f"answer-{i}" for i in range(total)]
        client = ScriptedClient(list(answers))
        barrier = threading.Barrier(8)

        def hammer(thread_index: int) -> list[tuple[str, str]]:
            barrier.wait()
            pairs = []
            for i in range(total // 8):
                prompt = f"prompt {thread_index}-{i}"
                pairs.append((prompt, client.complete(prompt).text))
            return pairs

        with ThreadPoolExecutor(max_workers=8) as pool:
            observed = [
                pair
                for pairs in pool.map(hammer, range(8))
                for pair in pairs
            ]

        # queue fully consumed, each answer handed out exactly once
        assert sorted(text for _, text in observed) == sorted(answers)
        # the recorded ledger agrees with what every caller saw, and the
        # i-th recorded prompt consumed the i-th queue entry
        assert sorted(client.calls) == sorted(observed)
        assert [text for _, text in client.calls] == answers[: len(client.calls)]
        assert [prompt for prompt, _ in client.calls] == client.prompts

    def test_scripting_miss_does_not_skew_the_ledger(self):
        """A rejected prompt leaves prompts/calls aligned for later calls."""
        client = ScriptedClient({"known": "answer"})
        with pytest.raises(LLMError):
            client.complete("never scripted")
        assert client.complete("known").text == "answer"
        assert client.prompts == ["known"]
        assert client.calls == [("known", "answer")]
