"""Tests for deterministic fault injection."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import (
    LLMTimeoutError,
    RateLimitError,
    TransientLLMError,
)
from repro.llm.client import ScriptedClient
from repro.llm.faults import (
    FAULT_KINDS,
    GARBAGE_COMPLETION,
    FaultInjector,
    FaultPlan,
    FaultyClient,
)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(rate_limit=1.5)
        with pytest.raises(ValueError):
            FaultPlan(rate_limit=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(rate_limit=0.6, timeout=0.6)

    def test_uniform_splits_total_rate(self):
        plan = FaultPlan.uniform(0.4, seed=7)
        assert plan.total_rate() == pytest.approx(0.4)
        assert plan.seed == 7

    def test_uniform_corruption_share(self):
        errors_only = FaultPlan.uniform(0.3, corruption_share=0.0)
        assert errors_only.truncate == errors_only.garbage == 0.0
        assert errors_only.total_rate() == pytest.approx(0.3)


class TestFaultInjector:
    def test_draws_are_deterministic(self):
        plan = FaultPlan.uniform(0.5, seed=3)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        prompts = [f"prompt {i}" for i in range(200)]
        assert [first.draw(p, 1) for p in prompts] == [
            second.draw(p, 1) for p in prompts
        ]

    def test_draws_are_order_independent(self):
        """Thread interleavings cannot change which call gets faulted."""
        plan = FaultPlan.uniform(0.5, seed=3)
        prompts = [f"prompt {i}" for i in range(100)]
        forward = [FaultInjector(plan).draw(p, 1) for p in prompts]
        backward_injector = FaultInjector(plan)
        backward = [backward_injector.draw(p, 1) for p in reversed(prompts)]
        assert forward == list(reversed(backward))

    def test_retries_roll_fresh_draws(self):
        """A faulted attempt does not doom the retry of the same prompt."""
        plan = FaultPlan.uniform(0.5, seed=0)
        injector = FaultInjector(plan)
        draws = {injector.draw("the prompt", attempt) for attempt in range(1, 30)}
        assert None in draws  # some attempt comes back clean
        assert draws - {None}  # and some attempts are faulted

    def test_attempt_counter_is_per_prompt_and_thread_safe(self):
        injector = FaultInjector(FaultPlan())
        with ThreadPoolExecutor(max_workers=8) as pool:
            attempts = list(
                pool.map(lambda _: injector.next_attempt("p"), range(80))
            )
        assert sorted(attempts) == list(range(1, 81))
        assert injector.next_attempt("other") == 1

    def test_rate_one_always_faults(self):
        injector = FaultInjector(FaultPlan(transient=1.0))
        assert all(
            injector.draw(f"p{i}", 1) == "transient" for i in range(50)
        )
        assert injector.stats.total_injected() == 50

    def test_stats_by_kind(self):
        injector = FaultInjector(FaultPlan.uniform(0.8, seed=1))
        for i in range(400):
            injector.draw(f"p{i}", 1)
        snapshot = injector.stats.snapshot()
        assert set(snapshot) <= set(FAULT_KINDS)
        assert sum(snapshot.values()) == injector.stats.total_injected()
        assert injector.stats.decisions == 400


class TestFaultyClient:
    def test_rate_zero_is_byte_exact_passthrough(self):
        plain = ScriptedClient({"prompt": "the answer"})
        wrapped = FaultyClient(
            ScriptedClient({"prompt": "the answer"}), FaultInjector(FaultPlan())
        )
        for i in range(20):
            a = plain.complete(f"prompt {i}")
            b = wrapped.complete(f"prompt {i}")
            assert a.text == b.text
            assert a.usage == b.usage

    def test_error_kinds_are_typed(self):
        cases = [
            (FaultPlan(rate_limit=1.0), RateLimitError),
            (FaultPlan(timeout=1.0), LLMTimeoutError),
            (FaultPlan(transient=1.0), TransientLLMError),
        ]
        for plan, expected in cases:
            client = FaultyClient(
                ScriptedClient({"p": "a"}), FaultInjector(plan)
            )
            with pytest.raises(expected):
                client.complete("p1")

    def test_rate_limit_carries_retry_after(self):
        plan = FaultPlan(rate_limit=1.0, retry_after=2.5)
        client = FaultyClient(ScriptedClient({"p": "a"}), FaultInjector(plan))
        with pytest.raises(RateLimitError) as excinfo:
            client.complete("p1")
        assert excinfo.value.retry_after == 2.5

    def test_error_faults_cost_no_tokens(self):
        """A rejected call never reaches the model (no usage metered)."""
        inner = ScriptedClient({"p": "a"})
        client = FaultyClient(inner, FaultInjector(FaultPlan(rate_limit=1.0)))
        with pytest.raises(RateLimitError):
            client.complete("p1")
        assert inner.prompts == []
        assert inner.meter.total.calls == 0

    def test_truncation_halves_text_but_keeps_usage(self):
        inner = ScriptedClient({"p": "a long completion with many words"})
        client = FaultyClient(inner, FaultInjector(FaultPlan(truncate=1.0)))
        response = client.complete("p1")
        full = "a long completion with many words"
        assert response.text == full[: len(full) // 2]
        assert response.usage.calls == 1  # the tokens were spent

    def test_garbage_replaces_completion(self):
        inner = ScriptedClient({"p": "clean"})
        client = FaultyClient(inner, FaultInjector(FaultPlan(garbage=1.0)))
        assert client.complete("p1").text == GARBAGE_COMPLETION

    def test_garbage_resists_extraction(self):
        from repro.core.extraction import extract_row
        from repro.errors import ExtractionError

        with pytest.raises(ExtractionError):
            extract_row(GARBAGE_COMPLETION, 3)
