"""Deadline propagation through dispatch and the pipelines.

The serving layer hands each request a
:class:`~repro.llm.resilience.Deadline`; the contract tested here is
that expired work is *skipped with a typed outcome* — never silently
dispatched, never an untyped crash — at every layer: the
ParallelDispatcher, the process-pool client, the UDF executor, and the
HQDL pipeline.
"""

import pytest

from repro.errors import DeadlineExceededError
from repro.llm.chat import ChatResponse
from repro.llm.parallel import ParallelDispatcher
from repro.llm.procpool import ProcPoolClient
from repro.llm.resilience import Deadline
from repro.llm.usage import Usage, UsageMeter
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor
from tests.conftest import make_model


class FakeClock:
    def __init__(self):
        self._now = 0.0

    def now(self):
        return self._now

    def sleep(self, seconds):
        self._now += seconds


class CountingClient:
    """A stub client that records how many prompts actually reached it."""

    model_name = "stub"

    def __init__(self):
        self.calls = 0
        self.meter = UsageMeter()

    def complete(self, prompt, *, label=""):
        self.calls += 1
        return ChatResponse(text="ok", usage=Usage(1, 1, 1))


def _expired_deadline():
    clock = FakeClock()
    deadline = Deadline(0.5, clock)
    clock.sleep(1.0)
    assert deadline.expired
    return deadline


class TestDispatcherDeadline:
    def test_expired_work_is_skipped_with_a_typed_outcome(self):
        client = CountingClient()
        outcomes = ParallelDispatcher(workers=2).dispatch(
            client,
            ["a", "b", "c"],
            labels="map",
            deadline=_expired_deadline(),
        )
        assert client.calls == 0, "expired prompts must never be dispatched"
        assert len(outcomes) == 3
        for outcome in outcomes:
            assert isinstance(outcome.error, DeadlineExceededError)
            assert outcome.degradable, "deadline skips must degrade to NULL"

    def test_live_deadline_dispatches_normally(self):
        client = CountingClient()
        clock = FakeClock()
        outcomes = ParallelDispatcher(workers=2).dispatch(
            client, ["a", "b"], labels="map", deadline=Deadline(60.0, clock)
        )
        assert client.calls == 2
        assert all(o.error is None for o in outcomes)


class TestProcPoolDeadline:
    def test_complete_many_skips_remaining_work(self, superhero_world):
        prompt = (
            "Answer the question with a single short value and no "
            "explanation.\nDatabase: superhero\nQuestion: Which comic book "
            "publisher published the superhero 'Hellboy'?\nAnswer:"
        )
        with ProcPoolClient(
            superhero_world, "perfect", processes=2
        ) as client:
            with pytest.raises(
                DeadlineExceededError, match="remaining work skipped"
            ):
                client.complete_many(
                    [prompt] * 4, ["qa"] * 4, deadline=_expired_deadline()
                )
            assert client.meter.total.calls == 0


class TestExecutorDeadline:
    @pytest.fixture()
    def executor(self, superhero_world):
        db = build_curated_database(superhero_world)
        model = make_model(superhero_world)
        executor = HybridQueryExecutor(
            db, model, superhero_world, workers=2
        )
        executor.model_meter = model.meter
        yield executor
        db.close()

    SQL = (
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        "'superhero::superhero_name', 'superhero::full_name')}} "
        "= 'Dark Horse Comics'"
    )

    def test_expired_deadline_degrades_every_cell(self, executor):
        executor.deadline = _expired_deadline()
        result, report = executor.execute_with_report(self.SQL)
        assert executor.model_meter.total.calls == 0
        assert result.rows == [], "every mapped cell degraded to NULL"
        assert report.degraded_keys > 0

    def test_generous_deadline_changes_nothing(self, executor):
        clock = FakeClock()
        baseline_result, baseline = executor.execute_with_report(self.SQL)
        executor.cache.clear()
        executor.deadline = Deadline(10_000.0, clock)
        result, report = executor.execute_with_report(self.SQL)
        assert result.rows == baseline_result.rows
        assert report.call_sizes == baseline.call_sizes
        assert report.degraded_keys == baseline.degraded_keys == 0


class TestHqdlDeadline:
    def test_expired_deadline_generates_null_cells_without_calls(
        self, superhero_world
    ):
        from repro.core.hqdl import HQDL

        model = make_model(superhero_world)
        pipeline = HQDL(superhero_world, model, workers=2)
        pipeline.deadline = _expired_deadline()
        generation = pipeline.generate_all()
        assert model.meter.total.calls == 0
        assert generation, "generation still completes, just degraded"
