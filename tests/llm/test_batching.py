"""Tests for batching helpers and the latency/parallelism model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.batching import (
    DEFAULT_BATCH_SIZE,
    LatencyModel,
    batched,
    parallel_makespan,
    sequential_makespan,
)


class TestBatched:
    def test_exact_chunks(self):
        assert batched([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder(self):
        assert batched([1, 2, 3], 2) == [[1, 2], [3]]

    def test_empty(self):
        assert batched([], 5) == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            batched([1], 0)

    def test_default_matches_paper(self):
        assert DEFAULT_BATCH_SIZE == 5

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(), max_size=50), st.integers(min_value=1, max_value=10))
    def test_batching_preserves_order_and_content(self, items, size):
        chunks = batched(items, size)
        assert [x for chunk in chunks for x in chunk] == items
        assert all(len(chunk) <= size for chunk in chunks)


class TestLatency:
    def test_call_latency_affine(self):
        model = LatencyModel(base_seconds=1.0, per_input_token=0.0,
                             per_output_token=0.1)
        assert model.call_latency(100, 10) == pytest.approx(2.0)

    def test_sequential_sums(self):
        model = LatencyModel(base_seconds=1.0, per_input_token=0.0,
                             per_output_token=0.0)
        assert sequential_makespan([(1, 1)] * 4, model) == pytest.approx(4.0)

    def test_parallel_with_enough_workers_is_max(self):
        model = LatencyModel(base_seconds=0.0, per_input_token=0.0,
                             per_output_token=1.0)
        calls = [(0, 5), (0, 3), (0, 2)]
        assert parallel_makespan(calls, workers=3, model=model) == pytest.approx(5.0)

    def test_parallel_never_beats_critical_path(self):
        model = LatencyModel()
        calls = [(100, 50)] * 10
        single = sequential_makespan(calls, model)
        for workers in (2, 4, 8):
            span = parallel_makespan(calls, workers, model)
            assert span <= single
            assert span >= single / workers - 1e-9

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            parallel_makespan([], 0)

    def test_empty_calls(self):
        assert parallel_makespan([], 4) == 0.0
        assert sequential_makespan([]) == 0.0
