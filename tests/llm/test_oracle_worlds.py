"""Cross-world oracle sweeps: every hallucination must stay *plausible*.

The paper's automatic evaluation depends on distractors being
well-formed (e.g. 'Marvel' vs 'Marvel Comics' ambiguity is designed
away via value lists, Section 4.1.1).  These sweeps check, for every
generated column of every world, that wrong answers keep the right
type/shape.
"""

import pytest

from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import ModelProfile, register_profile
from repro.swan.base import KIND_MULTI, KIND_NUMERIC, KIND_SELECTION

#: A deliberately ignorant model: every answer is a hallucination.
_ZERO = register_profile(
    ModelProfile(name="zero-knowledge", base_zero_shot=0.0, base_five_shot=0.0)
)

WORLD_NAMES = ["superhero", "formula_1", "california_schools",
               "european_football"]


@pytest.mark.parametrize("world_name", WORLD_NAMES)
class TestDistractorPlausibility:
    @pytest.fixture()
    def oracle(self, swan, world_name):
        return KnowledgeOracle(swan.world(world_name))

    def test_selection_distractors_stay_in_value_list(self, oracle, world_name):
        world = oracle.world
        for expansion in world.expansions:
            for column in expansion.columns:
                if column.kind != KIND_SELECTION:
                    continue
                allowed = set(world.value_lists[column.value_list])
                for key in list(world.truth[expansion.name])[:25]:
                    value = oracle.generate_value(
                        expansion.name, key, column.name, _ZERO, 0
                    )
                    assert value in allowed, (column.name, value)

    def test_numeric_distractors_parse_as_numbers(self, oracle, world_name):
        world = oracle.world
        for expansion in world.expansions:
            for column in expansion.columns:
                if column.kind != KIND_NUMERIC:
                    continue
                for key in list(world.truth[expansion.name])[:25]:
                    value = oracle.generate_value(
                        expansion.name, key, column.name, _ZERO, 0
                    )
                    assert float(value) == float(value)  # parses, not NaN

    def test_numeric_distractors_are_wrong_but_nearby(self, oracle, world_name):
        world = oracle.world
        for expansion in world.expansions:
            for column in expansion.columns:
                if column.kind != KIND_NUMERIC:
                    continue
                for key in list(world.truth[expansion.name])[:25]:
                    value = float(
                        oracle.generate_value(
                            expansion.name, key, column.name, _ZERO, 0
                        )
                    )
                    truth = float(
                        world.truth_value(expansion.name, key, column.name)
                    )
                    assert value != truth
                    assert abs(value - truth) <= abs(truth) * 0.25 + 2

    def test_multi_distractors_differ_from_truth(self, oracle, world_name):
        world = oracle.world
        for expansion in world.expansions:
            for column in expansion.columns:
                if column.kind != KIND_MULTI:
                    continue
                for key in list(world.truth[expansion.name])[:25]:
                    value = oracle.generate_value(
                        expansion.name, key, column.name, _ZERO, 0
                    )
                    truth = ", ".join(
                        world.truth_value(expansion.name, key, column.name)
                    )
                    assert value != truth

    def test_freeform_distractors_non_empty(self, oracle, world_name):
        world = oracle.world
        for expansion in world.expansions:
            for column in expansion.columns:
                if column.kind != "freeform":
                    continue
                for key in list(world.truth[expansion.name])[:25]:
                    value = oracle.generate_value(
                        expansion.name, key, column.name, _ZERO, 0
                    )
                    assert value.strip(), (column.name, key)


@pytest.mark.parametrize("world_name", WORLD_NAMES)
class TestResolutionCoverage:
    def test_demo_pool_questions_resolve_to_their_columns(self, swan, world_name):
        """The per-column canonical questions (used by the planner and the
        few-shot pool) must resolve back to the column they describe."""
        world = swan.world(world_name)
        oracle = KnowledgeOracle(world)
        for expansion in world.expansions:
            for column in expansion.columns:
                question = (
                    f"Provide the {column.description.lower()} for the given key."
                )
                resolved_expansion, resolved = oracle.resolve_attribute(question)
                assert (resolved_expansion.name, resolved.name) == (
                    expansion.name,
                    column.name,
                ), question
