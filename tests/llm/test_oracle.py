"""Tests for the knowledge oracle."""

import pytest

from repro.errors import LLMError
from repro.llm.oracle import KnowledgeOracle, stable_choice, stable_uniform
from repro.llm.profiles import get_profile
from repro.swan.base import KIND_MULTI


@pytest.fixture(scope="module")
def oracle(request):
    from repro.swan.benchmark import load_benchmark

    return KnowledgeOracle(load_benchmark().world("superhero"))


BATMAN = ("Batman", "Bruce Wayne")


class TestStableHashing:
    def test_uniform_deterministic(self):
        assert stable_uniform("a", 1) == stable_uniform("a", 1)

    def test_uniform_sensitive_to_parts(self):
        assert stable_uniform("a") != stable_uniform("b")

    def test_uniform_in_range(self):
        for i in range(100):
            assert 0.0 <= stable_uniform("x", i) < 1.0

    def test_choice_deterministic(self):
        options = ["a", "b", "c"]
        assert stable_choice(options, 1) == stable_choice(options, 1)

    def test_choice_empty_raises(self):
        with pytest.raises(LLMError):
            stable_choice([], 1)


class TestGeneration:
    def test_perfect_model_returns_truth(self, oracle):
        value = oracle.generate_value(
            "superhero_info", BATMAN, "publisher_name", get_profile("perfect"), 0
        )
        assert value == "DC Comics"

    def test_deterministic_per_cell(self, oracle):
        profile = get_profile("gpt-3.5-turbo")
        first = oracle.generate_value("superhero_info", BATMAN, "eye_color", profile, 0)
        second = oracle.generate_value("superhero_info", BATMAN, "eye_color", profile, 0)
        assert first == second

    def test_shots_monotone_knowledge(self, oracle):
        """A cell known at k shots stays known at k+ shots."""
        profile = get_profile("gpt-4-turbo")
        world = oracle.world
        for key in list(world.truth["superhero_info"])[:40]:
            previous_correct = False
            for shots in (0, 1, 3, 5):
                value = oracle.generate_value(
                    "superhero_info", key, "publisher_name", profile, shots
                )
                correct = value == world.truth_value(
                    "superhero_info", key, "publisher_name"
                )
                if previous_correct:
                    assert correct, (key, shots)
                previous_correct = correct

    def test_stronger_model_knows_superset(self, oracle):
        """GPT-4's correct cells include GPT-3.5's (same draw, higher bar)."""
        gpt35, gpt4 = get_profile("gpt-3.5-turbo"), get_profile("gpt-4-turbo")
        world = oracle.world
        for key in list(world.truth["superhero_info"])[:40]:
            truth = str(world.truth_value("superhero_info", key, "race"))
            weak = oracle.generate_value("superhero_info", key, "race", gpt35, 5)
            strong = oracle.generate_value("superhero_info", key, "race", gpt4, 5)
            if weak == truth:
                assert strong == truth, key

    def test_selection_distractor_from_value_list(self, oracle):
        profile = get_profile("gpt-3.5-turbo")
        publishers = set(oracle.world.value_lists["publishers"])
        for key in list(oracle.world.truth["superhero_info"])[:60]:
            value = oracle.generate_value(
                "superhero_info", key, "publisher_name", profile, 0
            )
            assert value in publishers

    def test_multi_formatting(self, oracle):
        value = oracle.generate_value(
            "superhero_info", BATMAN, "powers", get_profile("perfect"), 0
        )
        truth = oracle.world.truth_value("superhero_info", BATMAN, "powers")
        assert value == ", ".join(truth)

    def test_unknown_column_raises(self, oracle):
        with pytest.raises(LLMError):
            oracle.generate_value(
                "superhero_info", BATMAN, "shoe_size", get_profile("perfect"), 0
            )


class TestDistractors:
    def test_numeric_distractor_nearby_but_wrong(self):
        from repro.swan.benchmark import load_benchmark

        world = load_benchmark().world("european_football")
        oracle = KnowledgeOracle(world)
        wrong = oracle._numeric_distractor(180, ("seed",))
        assert wrong != 180
        assert isinstance(wrong, int)
        assert 100 < wrong < 260

    def test_url_mutation_changes_suffix(self):
        mutated = KnowledgeOracle._mutate_url("www.lincoln.edu", ("s",))
        assert mutated != "www.lincoln.edu"
        assert mutated.startswith("www.lincoln")

    def test_multi_distractor_differs(self, oracle):
        spec = oracle.column_spec("superhero_info", "powers")
        truth = oracle.world.truth_value("superhero_info", BATMAN, "powers")
        wrong = oracle._multi_distractor(spec, truth, ("seed",))
        assert tuple(wrong) != tuple(truth)


class TestResolution:
    def test_resolves_publisher(self, oracle):
        expansion, column = oracle.resolve_attribute(
            "Which comic book publisher published this superhero?"
        )
        assert column.name == "publisher_name"

    def test_resolves_every_keyworded_column(self, oracle):
        for expansion in oracle.world.expansions:
            for column in expansion.columns:
                question = f"Tell me about the {column.keywords[0]} please"
                _, resolved = oracle.resolve_attribute(question)
                assert resolved.keywords[0] in question

    def test_unresolvable_raises(self, oracle):
        with pytest.raises(LLMError):
            oracle.resolve_attribute("What is the meaning of life?")

    def test_find_key_exact_and_partial(self, oracle):
        expansion = oracle.world.expansion("superhero_info")
        assert oracle.find_key(expansion, "Batman") == BATMAN
        assert oracle.find_key(expansion, "bruce wayne") == BATMAN
        assert oracle.find_key(expansion, "Nobody Nowhere") is None
