"""Smoke tests: every example script runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_at_least_four_examples_exist():
    # the deliverable requires >= 3 runnable examples; we ship 5
    assert len(EXAMPLES) >= 4
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
