"""Shared fixtures for the test suite.

The SWAN benchmark is deterministic and read-only, so it is loaded once
per session; anything that mutates a database builds its own copy.
"""

from __future__ import annotations

import pytest

from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.sqlengine.database import Database
from repro.swan.benchmark import Swan, load_benchmark


@pytest.fixture(scope="session")
def swan() -> Swan:
    return load_benchmark()


@pytest.fixture(scope="session")
def superhero_world(swan):
    return swan.world("superhero")


@pytest.fixture(scope="session")
def football_world(swan):
    return swan.world("european_football")


@pytest.fixture(scope="session")
def formula_world(swan):
    return swan.world("formula_1")


@pytest.fixture(scope="session")
def schools_world(swan):
    return swan.world("california_schools")


@pytest.fixture()
def perfect_model(superhero_world):
    """A perfect-knowledge model bound to the superhero world."""
    return MockChatModel(KnowledgeOracle(superhero_world), get_profile("perfect"))


def make_model(world, profile_name: str = "perfect") -> MockChatModel:
    """Build a chat model for any world (helper, not a fixture)."""
    return MockChatModel(KnowledgeOracle(world), get_profile(profile_name))


@pytest.fixture()
def memory_db():
    """An empty in-memory database, closed after the test."""
    db = Database.in_memory()
    yield db
    db.close()
