"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            errors.SQLSyntaxError,
            errors.UnsupportedSQLError,
            errors.SchemaError,
            errors.CurationError,
            errors.ExtractionError,
            errors.IngredientError,
            errors.ExecutionError,
            errors.LLMError,
            errors.BudgetExceededError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, errors.ReproError)

    def test_budget_is_llm_error(self):
        assert issubclass(errors.BudgetExceededError, errors.LLMError)


class TestSQLSyntaxError:
    def test_carries_line(self):
        exc = errors.SQLSyntaxError("bad token", line=3)
        assert "line 3" in str(exc)
        assert exc.line == 3

    def test_carries_offset(self):
        exc = errors.SQLSyntaxError("bad token", position=17)
        assert "offset 17" in str(exc)

    def test_bare_message(self):
        assert str(errors.SQLSyntaxError("oops")) == "oops"


class TestCatchability:
    def test_one_handler_for_everything(self):
        """An API boundary can catch ReproError and nothing slips by."""
        from repro.sqlparser import parse

        with pytest.raises(errors.ReproError):
            parse("SELECT FROM")
        with pytest.raises(errors.ReproError):
            parse("SELECT {{nonsense}}")
