"""Tests for counters, gauges, histograms, and the registry."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullMetrics,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_concurrent_increments(self):
        c = Counter("c")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_and_inc_dec(self):
        g = Gauge("g")
        g.set(3)
        g.inc(2)
        g.dec()
        assert g.value == 4

    def test_high_water_mark(self):
        g = Gauge("g")
        g.set(7)
        g.set(2)
        g.inc()
        assert g.value == 3
        assert g.max_value == 7

    def test_max_tracks_inc(self):
        g = Gauge("g")
        g.inc(5)
        g.dec(5)
        assert g.max_value == 5


class TestHistogram:
    def test_observe_and_totals(self):
        h = Histogram("h")
        h.observe(0.003)
        h.observe(2.0)
        assert h.count == 2
        assert h.sum == pytest.approx(2.003)

    def test_snapshot_is_cumulative(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)
        snap = h.snapshot()
        assert snap["buckets"] == {"1": 1, "10": 2, "+Inf": 3}
        assert snap["count"] == 3

    def test_boundary_lands_in_its_bucket(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        h.observe(1.0)
        assert h.snapshot()["buckets"]["1"] == 1

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", bounds=(2.0, 1.0))

    def test_default_buckets_cover_llm_latencies(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 60.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")

    def test_labels_separate_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("calls", stage="map")
        b = reg.counter("calls", stage="qa")
        a.inc(2)
        assert b.value == 0
        assert reg.value("calls", stage="map") == 2

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("c", a=1, b=2) is reg.counter("c", b=2, a=1)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("x")

    def test_value_of_missing_metric_is_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_snapshot_flattens_and_sorts(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.depth").set(3)
        snap = reg.snapshot()
        assert snap["b.count"] == 2
        assert snap["a.depth"] == 3
        assert snap["a.depth.max"] == 3
        assert list(snap) == ["a.depth", "a.depth.max", "b.count"]

    def test_snapshot_includes_labelled(self):
        reg = MetricsRegistry()
        reg.counter("calls", stage="map").inc()
        assert reg.snapshot()['calls{stage="map"}'] == 1

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("llm.cache.hits").inc(3)
        reg.gauge("dispatch.in_flight").set(2)
        reg.histogram("llm.retry.backoff_seconds", bounds=(1.0,)).observe(0.5)
        text = reg.render_prometheus()
        assert "# TYPE llm_cache_hits counter" in text
        assert "llm_cache_hits 3" in text
        assert "dispatch_in_flight_max 2" in text
        assert 'llm_retry_backoff_seconds_bucket{le="1"} 1' in text
        assert 'llm_retry_backoff_seconds_bucket{le="+Inf"} 1' in text
        assert "llm_retry_backoff_seconds_count 1" in text

    def test_prometheus_labelled_counter(self):
        reg = MetricsRegistry()
        reg.counter("llm.calls", stage="udf:qa").inc(4)
        assert 'llm_calls{stage="udf:qa"} 4' in reg.render_prometheus()

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("q", sql='SELECT "a"\nFROM t\\x').inc()
        text = reg.render_prometheus()
        assert 'q{sql="SELECT \\"a\\"\\nFROM t\\\\x"} 1' in text
        assert "\nFROM" not in text  # the newline never splits the line

    def test_prometheus_escapes_histogram_bucket_labels(self):
        reg = MetricsRegistry()
        reg.histogram("lat", bounds=(1.0,), stage='a"b').observe(0.5)
        text = reg.render_prometheus()
        assert 'lat_bucket{stage="a\\"b",le="1"} 1' in text

    def test_prometheus_always_ends_with_newline(self):
        reg = MetricsRegistry()
        assert reg.render_prometheus() == "\n"
        reg.counter("x").inc()
        text = reg.render_prometheus()
        assert text.endswith("\n")
        assert not text.endswith("\n\n")

    def test_snapshot_keys_stay_unescaped(self):
        reg = MetricsRegistry()
        reg.counter("q", sql='a"b').inc()
        assert 'q{sql="a"b"}' in reg.snapshot()

    def test_concurrent_get_or_create(self):
        reg = MetricsRegistry()
        instruments = []

        def grab():
            for i in range(100):
                c = reg.counter("shared")
                c.inc()
                instruments.append(c)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(inst is instruments[0] for inst in instruments)
        assert reg.value("shared") == 400


class TestNullMetrics:
    def test_disabled_flag(self):
        assert NullMetrics().enabled is False
        assert MetricsRegistry().enabled is True

    def test_everything_is_the_shared_noop(self):
        null = NullMetrics()
        assert null.counter("a") is NULL_INSTRUMENT
        assert null.gauge("b") is NULL_INSTRUMENT
        assert null.histogram("c") is NULL_INSTRUMENT

    def test_noop_operations_are_safe(self):
        null = NullMetrics()
        inst = null.counter("a")
        inst.inc()
        inst.dec()
        inst.set(5)
        inst.observe(1.0)
        assert inst.value == 0
        assert null.snapshot() == {}
        assert null.render_prometheus() == ""
        assert null.value("a") == 0
