"""Tests for the provenance recorder (calls, cells, chains, null object)."""

import threading

import pytest

from repro.llm.usage import Usage
from repro.obs.provenance import (
    NULL_PROVENANCE,
    TIER_DISK,
    TIER_FRESH,
    TIER_MEMORY,
    NullProvenance,
    ProvenanceRecorder,
    call_id_for,
    resolve_provenance,
)


class TestCallIds:
    def test_stable_and_content_addressed(self):
        assert call_id_for("prompt a") == call_id_for("prompt a")
        assert call_id_for("prompt a") != call_id_for("prompt b")

    def test_shape(self):
        cid = call_id_for("anything")
        assert cid.startswith("c")
        assert len(cid) == 13


class TestCallRecording:
    def test_record_call_get_or_create(self):
        prov = ProvenanceRecorder()
        cid1 = prov.record_call("p1", label="map")
        cid2 = prov.record_call("p1", label="map")
        assert cid1 == cid2
        assert prov.call(cid1).dispatches == 2
        assert len(prov.calls()) == 1

    def test_outcome_accumulates_tokens(self):
        prov = ProvenanceRecorder()
        cid = prov.record_call("p1", label="map")
        prov.record_outcome("p1", Usage(calls=1, input_tokens=10, output_tokens=3))
        call = prov.call(cid)
        assert call.input_tokens == 10
        assert call.output_tokens == 3
        assert call.paid_calls == 1

    def test_cached_outcome_adds_no_tokens(self):
        prov = ProvenanceRecorder()
        cid = prov.record_call("p1", label="map")
        prov.record_outcome("p1", Usage())
        assert prov.call(cid).paid_calls == 0
        assert prov.call(cid).input_tokens == 0

    def test_record_planned_marks_without_dispatch(self):
        prov = ProvenanceRecorder()
        cid = prov.record_planned("p1", label="plan")
        call = prov.call(cid)
        assert call.planned
        assert call.dispatches == 0
        # the actual dispatch later shares the id and keeps the flag
        assert prov.record_call("p1", label="plan") == cid
        assert prov.call(cid).planned
        assert prov.call(cid).dispatches == 1

    def test_retries_and_failure(self):
        prov = ProvenanceRecorder()
        cid = prov.record_call("p1", label="map")
        prov.record_retry("p1", "TransientLLMError")
        prov.record_retry("p1", "TransientLLMError")
        prov.record_failure("p1", "RetryBudgetExceededError")
        call = prov.call(cid)
        assert call.retries == 2
        assert call.faults == ["TransientLLMError", "TransientLLMError"]
        assert call.failed
        assert call.error == "RetryBudgetExceededError"

    def test_tier_tracking(self):
        prov = ProvenanceRecorder()
        cid = prov.record_call("p1", label="map")
        assert prov.call(cid).tier == TIER_FRESH
        prov.record_tier("p1", TIER_MEMORY)
        assert prov.call(cid).tier == TIER_MEMORY


class TestCellRecording:
    def test_cell_inherits_context_and_tier(self):
        prov = ProvenanceRecorder()
        with prov.context(pipeline="udf", database="superhero", qid="q1"):
            cid = prov.record_call("p1", label="map")
            prov.record_tier("p1", TIER_DISK)
            prov.record_cell("t", ("k",), "v", cid, null=False, degraded=False)
        (cell,) = prov.cells()
        assert cell.pipeline == "udf"
        assert cell.database == "superhero"
        assert cell.qid == "q1"
        assert cell.tier == TIER_DISK
        assert not cell.null and not cell.degraded

    def test_context_frames_layer_and_restore(self):
        prov = ProvenanceRecorder()
        with prov.context(pipeline="udf", database="db1"):
            with prov.context(qid="q1"):
                prov.record_cell("t", (1,), "v", "", null=False, degraded=False)
            prov.record_cell("t", (2,), "v", "", null=False, degraded=False)
        inner, outer = prov.cells()
        assert inner.qid == "q1" and inner.database == "db1"
        assert outer.qid == "" and outer.database == "db1"

    def test_cells_for_filters(self):
        prov = ProvenanceRecorder()
        with prov.context(pipeline="udf", database="db1", qid="q1"):
            prov.record_cell("t", (1,), "v", "", null=False, degraded=False)
        with prov.context(pipeline="hqdl", database="db1", qid=""):
            prov.record_cell("t", (2,), "v", "", null=True, degraded=False)
        assert len(prov.cells_for(qid="q1", database="db1", pipeline="udf")) == 1
        assert len(prov.cells_for(qid="", database="db1", pipeline="hqdl")) == 1
        assert prov.cells_for(qid="q9", database="db1", pipeline="udf") == []

    def test_chain_links_cell_to_call(self):
        prov = ProvenanceRecorder()
        cid = prov.record_call("p1", label="map")
        prov.record_cell("t", (1,), "v", cid, null=False, degraded=False)
        (cell,) = prov.cells()
        chain = prov.chain(cell)
        assert chain["cell"]["call_id"] == cid
        assert chain["call"]["call_id"] == cid
        assert chain["call"]["dispatches"] == 1

    def test_chain_without_call_record(self):
        prov = ProvenanceRecorder()
        prov.record_cell("t", (1,), "v", "c000", null=False, degraded=False)
        (cell,) = prov.cells()
        assert prov.chain(cell)["call"] is None

    def test_stats(self):
        prov = ProvenanceRecorder()
        cid = prov.record_call("p1", label="map")
        prov.record_cell("t", (1,), "v", cid, null=True, degraded=False)
        prov.record_cell("t", (2,), "v", cid, null=True, degraded=True)
        stats = prov.stats()
        assert stats["calls"] == 1
        assert stats["cells"] == 2
        assert stats["null_cells"] == 2
        assert stats["degraded_cells"] == 1


class TestThreadSafety:
    def test_concurrent_recording(self):
        prov = ProvenanceRecorder()

        def work(index: int) -> None:
            with prov.context(pipeline="udf", database="db", qid=f"q{index}"):
                for j in range(50):
                    cid = prov.record_call(f"p{index}-{j}", label="map")
                    prov.record_outcome(
                        f"p{index}-{j}", Usage(calls=1, input_tokens=1)
                    )
                    prov.record_cell(
                        "t", (index, j), "v", cid, null=False, degraded=False
                    )

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(prov.calls()) == 8 * 50
        assert len(prov.cells()) == 8 * 50
        # each thread's cells carry that thread's own context
        for index in range(8):
            cells = prov.cells_for(qid=f"q{index}", database="db", pipeline="udf")
            assert len(cells) == 50


class TestNullProvenance:
    def test_disabled_and_inert(self):
        assert not NULL_PROVENANCE.enabled
        with NULL_PROVENANCE.context(pipeline="udf", qid="q"):
            assert NULL_PROVENANCE.record_call("p", label="x") == ""
            assert NULL_PROVENANCE.record_planned("p") == ""
            NULL_PROVENANCE.record_outcome("p", Usage())
            NULL_PROVENANCE.record_tier("p", TIER_MEMORY)
            NULL_PROVENANCE.record_retry("p", "Fault")
            NULL_PROVENANCE.record_failure("p", "Err")
            NULL_PROVENANCE.record_cell("t", (1,), "v", "", null=True, degraded=True)
        assert NULL_PROVENANCE.calls() == []
        assert NULL_PROVENANCE.cells() == []

    def test_resolve(self):
        assert resolve_provenance(None) is NULL_PROVENANCE
        prov = ProvenanceRecorder()
        assert resolve_provenance(prov) is prov
        assert isinstance(resolve_provenance(None), NullProvenance)
