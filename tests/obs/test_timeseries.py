"""Tests for the windowed time-series aggregator (PR 8 tentpole)."""

import json
import random
import threading

import pytest

from repro.obs.timeseries import (
    DEFAULT_RETENTION,
    DEFAULT_WINDOW_SECONDS,
    NULL_TIMESERIES,
    NullWindowedAggregator,
    WindowedAggregator,
    percentile,
    render_series,
)


class TestWindowBoundaries:
    def test_half_open_boundary_lands_in_the_window_it_starts(self):
        agg = WindowedAggregator(window_seconds=5.0)
        agg.record("x", 4.999999)
        agg.record("x", 5.0)
        rows = {row.window: row for row in agg.rows("x")}
        assert rows[0].count == 1
        assert rows[1].count == 1

    def test_window_index_is_floor(self):
        agg = WindowedAggregator(window_seconds=5.0)
        assert agg.window_index(0.0) == 0
        assert agg.window_index(4.999) == 0
        assert agg.window_index(5.0) == 1
        assert agg.window_index(12.5) == 2

    def test_every_event_lands_in_exactly_one_window(self):
        """Property: sweeping instants across boundaries never
        double-counts or drops an event."""
        agg = WindowedAggregator(window_seconds=2.5)
        rng = random.Random(7)
        times = [round(rng.uniform(0.0, 50.0), 3) for _ in range(500)]
        # include exact boundaries, which is where off-by-ones live
        times += [0.0, 2.5, 5.0, 7.5, 47.5]
        for t in times:
            agg.record("events", t)
        rows = agg.rows("events")
        assert sum(row.count for row in rows) == len(times)
        for t in times:
            index = agg.window_index(t)
            assert index * 2.5 <= t < (index + 1) * 2.5

    def test_empty_windows_render_as_zero_rate_rows_not_gaps(self):
        agg = WindowedAggregator(window_seconds=5.0)
        agg.record("x", 1.0)
        agg.record("x", 27.0)  # windows 0 and 5; 1..4 are idle
        rows = agg.rows("x")
        assert [row.window for row in rows] == [0, 1, 2, 3, 4, 5]
        for row in rows[1:-1]:
            assert row.count == 0
            assert row.rate == 0.0
        assert rows[0].count == 1 and rows[-1].count == 1

    def test_rows_of_all_series_align_on_the_shared_span(self):
        agg = WindowedAggregator(window_seconds=5.0)
        agg.record("a", 2.0)
        agg.record("b", 22.0)
        assert [r.window for r in agg.rows("a")] == [0, 1, 2, 3, 4]
        assert [r.window for r in agg.rows("b")] == [0, 1, 2, 3, 4]


class TestRetentionRing:
    def test_eviction_keeps_exactly_retention_windows(self):
        agg = WindowedAggregator(window_seconds=1.0, retention=4)
        for t in range(10):  # windows 0..9
            agg.record("x", float(t))
        rows = agg.rows("x")
        assert len(rows) == 4
        assert [row.window for row in rows] == [6, 7, 8, 9]

    def test_property_ring_never_exceeds_retention(self):
        rng = random.Random(3)
        agg = WindowedAggregator(window_seconds=1.0, retention=7)
        high = 0.0
        for _ in range(300):
            high += rng.uniform(0.0, 2.0)
            agg.record("x", high)
            first, last = agg.span()
            assert last - first + 1 <= 7
        assert len(agg.rows("x")) <= 7

    def test_stale_events_older_than_the_ring_are_dropped(self):
        agg = WindowedAggregator(window_seconds=1.0, retention=3)
        agg.record("x", 10.0)
        agg.record("x", 0.5)  # far older than the retained ring
        rows = agg.rows("x")
        # the stale event is gone: it neither creates a window nor
        # widens the retained span
        assert [row.window for row in rows] == [10]
        assert sum(row.count for row in rows) == 1

    def test_total_covers_only_retained_windows(self):
        agg = WindowedAggregator(window_seconds=1.0, retention=2)
        agg.record("x", 0.0, 5)
        agg.record("x", 9.0, 7)
        assert agg.total("x") == 7.0


class TestAggregation:
    def test_counter_rate_is_sum_over_window_seconds(self):
        agg = WindowedAggregator(window_seconds=5.0)
        agg.record("tokens", 1.0, 100)
        agg.record("tokens", 2.0, 50)
        row = agg.rows("tokens")[0]
        assert row.sum == 150.0
        assert row.rate == 30.0

    def test_observe_renders_percentiles(self):
        agg = WindowedAggregator(window_seconds=100.0)
        for v in range(1, 101):
            agg.observe("lat", 1.0, float(v))
        row = agg.rows("lat")[0]
        assert row.min == 1.0 and row.max == 100.0
        assert row.p50 == 50.0
        assert row.p95 == 95.0
        assert row.p99 == 99.0

    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0
        assert percentile([1.0, 2.0], 0.5) == 1.0
        assert percentile([1.0, 2.0], 0.51) == 2.0

    def test_labels_split_series(self):
        agg = WindowedAggregator(window_seconds=5.0)
        agg.record("shed", 1.0, tenant="a")
        agg.record("shed", 1.0, tenant="b")
        agg.record("shed", 1.0, tenant="a")
        assert agg.rows("shed", tenant="a")[0].count == 2
        assert agg.rows("shed", tenant="b")[0].count == 1
        assert agg.label_values("shed", "tenant") == ["a", "b"]

    def test_render_series(self):
        assert render_series("x", ()) == "x"
        assert (
            render_series("x", (("a", "1"), ("b", "2"))) == "x{a=1,b=2}"
        )

    def test_snapshot_is_json_stable(self):
        agg = WindowedAggregator(window_seconds=5.0)
        agg.record("x", 1.0)
        agg.observe("y", 2.0, 3.0, tenant="t")
        snap = agg.snapshot()
        assert json.dumps(snap, sort_keys=True) == json.dumps(
            agg.snapshot(), sort_keys=True
        )
        assert "x" in snap["series"]
        assert "y{tenant=t}" in snap["series"]

    def test_concurrent_recording_is_deterministic(self):
        def build():
            agg = WindowedAggregator(window_seconds=5.0)
            threads = [
                threading.Thread(
                    target=lambda k=k: [
                        agg.observe("lat", t * 0.1, float(t % 17) + k)
                        for t in range(200)
                    ]
                )
                for k in range(4)
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            return json.dumps(agg.snapshot(), sort_keys=True)

        assert build() == build()


class TestValidation:
    def test_bad_window_seconds(self):
        with pytest.raises(ValueError, match="window_seconds"):
            WindowedAggregator(window_seconds=0.0)

    def test_bad_retention(self):
        with pytest.raises(ValueError, match="retention"):
            WindowedAggregator(retention=0)

    def test_defaults(self):
        agg = WindowedAggregator()
        assert agg.window_seconds == DEFAULT_WINDOW_SECONDS
        assert agg.retention == DEFAULT_RETENTION


class TestNullAggregator:
    def test_disabled_and_inert(self):
        assert NULL_TIMESERIES.enabled is False
        assert isinstance(NULL_TIMESERIES, NullWindowedAggregator)
        NULL_TIMESERIES.record("x", 1.0)
        NULL_TIMESERIES.observe("x", 1.0, 2.0)
        assert NULL_TIMESERIES.rows("x") == []
        assert NULL_TIMESERIES.span() == (0, -1)
        assert NULL_TIMESERIES.total("x") == 0.0
        assert NULL_TIMESERIES.snapshot() == {}
        assert list(NULL_TIMESERIES.iter_series()) == []
