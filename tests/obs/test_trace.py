"""Tests for the tracer: nesting, threads, determinism, null mode."""

import threading

from repro.llm.parallel import SimulatedClock
from repro.obs.trace import NULL_SPAN, NullTracer, Span, Tracer


class FakeClock:
    """A clock that ticks one second per now() call."""

    def __init__(self):
        self.t = 0.0

    def now(self):
        self.t += 1.0
        return self.t


class TestSpanNesting:
    def test_parent_child(self):
        tracer = Tracer(FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.parent_id == outer.span_id

    def test_sibling_order(self):
        tracer = Tracer(FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert [c.name for c in outer.children] == ["a", "b"]

    def test_ids_in_start_order(self):
        tracer = Tracer(FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.span_id for s in tracer.spans] == ["s1", "s2"]

    def test_current_tracks_innermost(self):
        tracer = Tracer(FakeClock())
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_explicit_none_parent_makes_root(self):
        tracer = Tracer(FakeClock())
        with tracer.span("outer"):
            with tracer.span("floating", parent=None) as floating:
                pass
        assert floating in tracer.roots

    def test_attributes_and_set(self):
        tracer = Tracer(FakeClock())
        with tracer.span("s", qid="q1") as span:
            span.set("correct", True)
        assert span.attributes == {"qid": "q1", "correct": True}

    def test_exception_marks_error(self):
        tracer = Tracer(FakeClock())
        try:
            with tracer.span("s") as span:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert span.attributes["error"] == "RuntimeError"
        assert span.end is not None


class TestTiming:
    def test_duration_from_clock(self):
        tracer = Tracer(FakeClock())
        with tracer.span("s") as span:
            pass
        assert span.start == 1.0
        assert span.end == 2.0
        assert span.duration == 1.0

    def test_open_span_duration_zero(self):
        tracer = Tracer(FakeClock())
        with tracer.span("s") as span:
            assert span.duration == 0.0

    def test_self_time_decomposition(self):
        root = Span("root", "s1", None, 0.0)
        child = Span("child", "s2", "s1", 2.0)
        child.end = 5.0
        root.children.append(child)
        root.end = 10.0
        assert root.self_time() == 7.0
        assert root.self_time() + child.self_time() == root.duration

    def test_simulated_clock_timestamps(self):
        clock = SimulatedClock(1)
        tracer = Tracer(clock)
        with tracer.span("run") as run:
            clock.advance(3.0)
            with tracer.span("call") as call:
                clock.advance(2.0)
        assert run.start == 0.0
        assert call.start == 3.0
        assert call.end == 5.0
        assert run.end == 5.0


class TestCrossThread:
    def test_explicit_parent_across_threads(self):
        tracer = Tracer(FakeClock())
        with tracer.span("dispatch") as dispatch:

            def work():
                with tracer.span("call", parent=dispatch):
                    pass

            t = threading.Thread(target=work)
            t.start()
            t.join()
        (call,) = dispatch.children
        assert call.name == "call"
        assert call.parent_id == dispatch.span_id
        assert call.lane != dispatch.lane

    def test_worker_stack_is_isolated(self):
        tracer = Tracer(FakeClock())
        seen = []
        with tracer.span("main"):

            def work():
                seen.append(tracer.current())

            t = threading.Thread(target=work)
            t.start()
            t.join()
        assert seen == [None]


class TestDeterminism:
    def run_once(self):
        tracer = Tracer(SimulatedClock(1))
        clock = tracer.clock
        with tracer.span("run", pipeline="udf"):
            for qid in ("q1", "q2"):
                with tracer.span("question", qid=qid) as q:
                    clock.advance(1.5)
                    q.set("correct", True)
        return tracer

    def test_same_run_same_tree(self):
        a, b = self.run_once(), self.run_once()
        assert [r.tree() for r in a.roots] == [r.tree() for r in b.roots]
        assert [s.span_id for s in a.spans] == [s.span_id for s in b.spans]

    def test_walk_is_depth_first(self):
        tracer = self.run_once()
        names = [s.name for s in tracer.roots[0].walk()]
        assert names == ["run", "question", "question"]


class TestNullTracer:
    def test_disabled_flag(self):
        assert NullTracer().enabled is False
        assert Tracer(FakeClock()).enabled is True

    def test_span_is_shared_noop(self):
        null = NullTracer()
        assert null.span("x") is NULL_SPAN
        assert null.span("x", parent=None, qid="q") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set("k", "v")
        assert span.attributes == {}
        assert span.duration == 0.0
        assert list(span.walk()) == []
        assert span.tree() == ()

    def test_records_nothing(self):
        null = NullTracer()
        with null.span("x"):
            pass
        assert null.roots == []
        assert null.spans == []
        assert null.current() is None
