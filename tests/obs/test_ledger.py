"""Tests for the persistent run ledger (append, read-back, recovery)."""

import sqlite3

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    config_fingerprint,
)


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = config_fingerprint({"model": "m", "shots": 5})
        b = config_fingerprint({"shots": 5, "model": "m"})
        assert a == b
        assert len(a) == 12

    def test_differs_on_value_change(self):
        a = config_fingerprint({"model": "m", "shots": 5})
        b = config_fingerprint({"model": "m", "shots": 0})
        assert a != b


class TestAppendAndRead:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        with RunLedger(path) as ledger:
            rid = ledger.append(
                label="udf", pipeline="udf",
                config={"model": "m", "shots": 0},
                ex=0.45, f1=None, llm_calls=10,
                input_tokens=100, output_tokens=20, makespan=1.5,
                payload={"metrics": {"x": 1}},
            )
            assert rid == 1
            row = ledger.latest(label="udf")
        assert row["ex"] == pytest.approx(0.45)
        assert row["llm_calls"] == 10
        assert row["makespan"] == pytest.approx(1.5)
        assert row["fingerprint"] == config_fingerprint(
            {"model": "m", "shots": 0}
        )
        assert row["payload"]["metrics"] == {"x": 1}
        assert row["payload"]["config"] == {"model": "m", "shots": 0}

    def test_history_survives_reopen(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        with RunLedger(path) as ledger:
            ledger.append(label="a", pipeline="udf", ex=0.1)
        with RunLedger(path) as ledger:
            ledger.append(label="a", pipeline="udf", ex=0.2)
            runs = ledger.runs(label="a")
        assert [run["ex"] for run in runs] == [
            pytest.approx(0.1), pytest.approx(0.2)
        ]

    def test_filters(self, tmp_path):
        with RunLedger(tmp_path / "l.sqlite") as ledger:
            ledger.append(label="a", pipeline="udf", config={"x": 1})
            ledger.append(label="a", pipeline="hqdl", config={"x": 1})
            ledger.append(label="b", pipeline="udf", config={"x": 2})
            assert len(ledger.runs(label="a")) == 2
            assert len(ledger.runs(pipeline="udf")) == 2
            fp = config_fingerprint({"x": 1})
            assert len(ledger.runs(fingerprint=fp)) == 2
            assert ledger.latest(label="b")["pipeline"] == "udf"
            assert ledger.latest(label="nope") is None
            assert len(ledger) == 3

    def test_stats(self, tmp_path):
        with RunLedger(tmp_path / "l.sqlite") as ledger:
            ledger.append(label="a", pipeline="udf")
            stats = ledger.stats()
        assert stats == {
            "runs": 1, "appends": 1, "recovered": False, "wiped": False,
        }


class TestCorruptionRecovery:
    def test_garbage_file_is_discarded_and_recreated(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        path.write_bytes(b"this is not a sqlite database, not even close")
        with RunLedger(path) as ledger:
            assert ledger.recovered
            assert len(ledger) == 0
            ledger.append(label="a", pipeline="udf", ex=0.3)
            assert ledger.latest(label="a")["ex"] == pytest.approx(0.3)

    def test_truncated_sqlite_header(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        with RunLedger(path) as ledger:
            ledger.append(label="a", pipeline="udf")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3] + b"\x00" * 16)
        with RunLedger(path) as ledger:
            # either recovered (unreadable) or wiped rows; never raises
            ledger.append(label="b", pipeline="udf")
            assert ledger.latest(label="b") is not None

    def test_clean_file_not_flagged(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        with RunLedger(path) as ledger:
            ledger.append(label="a", pipeline="udf")
        with RunLedger(path) as ledger:
            assert not ledger.recovered
            assert not ledger.wiped


class TestSchemaVersioning:
    def test_version_bump_wipes_rows(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        with RunLedger(path) as ledger:
            ledger.append(label="a", pipeline="udf")
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET version = ?", (LEDGER_SCHEMA_VERSION - 1,)
        )
        conn.commit()
        conn.close()
        with RunLedger(path) as ledger:
            assert ledger.wiped
            assert len(ledger) == 0
            row = None
            ledger.append(label="b", pipeline="udf")
            row = ledger.latest()
        assert row["label"] == "b"

    def test_current_version_stamped(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        RunLedger(path).close()
        conn = sqlite3.connect(path)
        (version,) = conn.execute("SELECT version FROM meta").fetchone()
        conn.close()
        assert version == LEDGER_SCHEMA_VERSION
