"""Tests for the flight recorder ring and incident dumps."""

import json

import pytest

from repro.obs.flightrec import (
    DEFAULT_CAPACITY,
    FlightEvent,
    FlightRecorder,
    NULL_FLIGHT_RECORDER,
)


class TestRing:
    def test_bounded_capacity_drops_oldest(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record(float(i), "shed", request_id=i)
        assert len(rec) == 3
        assert rec.recorded == 5
        assert rec.dropped == 2
        assert [e["request_id"] for e in rec.events()] == [2, 3, 4]

    def test_event_records_are_sorted_and_rounded(self):
        event = FlightEvent(1.23456789, "breaker", {"b": 2, "a": 1})
        record = event.as_record()
        assert list(record) == ["t", "kind", "a", "b"]
        assert record["t"] == 1.234568

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY


class TestIncidents:
    def test_incident_snapshots_ring_and_context(self):
        rec = FlightRecorder(capacity=8)
        rec.record(1.0, "shed", tenant="a", reason="queue_full")
        rec.record(2.0, "breaker", from_state="closed", to_state="open")
        incident = rec.incident(
            {"slo": "availability", "severity": "fast"},
            window={"index": 0, "offered": 4},
            span={"first_window": 0, "last_window": 1},
        )
        assert incident["incident"] == 1
        assert incident["alert"]["slo"] == "availability"
        assert incident["window"]["offered"] == 4
        assert [e["kind"] for e in incident["events"]] == ["shed", "breaker"]
        assert rec.incidents == [incident]

    def test_sink_appends_one_json_line_at_fire_time(self, tmp_path):
        sink = tmp_path / "incidents.jsonl"
        rec = FlightRecorder(capacity=4, sink=sink)
        rec.record(1.0, "shed", tenant="a")
        rec.incident({"slo": "availability"})
        rec.incident({"slo": "latency"})
        lines = sink.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["incident"] == 1
        assert first["events"][0]["kind"] == "shed"

    def test_write_jsonl_round_trips(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        rec.record(1.0, "admit", tenant="a")
        rec.incident({"slo": "availability"})
        path = rec.write_jsonl(tmp_path / "out.jsonl")
        loaded = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert loaded == rec.incidents


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_FLIGHT_RECORDER.enabled is False
        NULL_FLIGHT_RECORDER.record(1.0, "shed")
        assert len(NULL_FLIGHT_RECORDER) == 0
        assert NULL_FLIGHT_RECORDER.events() == []
        assert NULL_FLIGHT_RECORDER.incident({"slo": "x"}) == {}
        with pytest.raises(ValueError):
            NULL_FLIGHT_RECORDER.write_jsonl("anywhere.jsonl")
