"""Tests for the deterministic tail-based trace sampler."""

from dataclasses import dataclass

import pytest

from repro.obs.sampler import (
    KEEP_HASH,
    KEEP_OUTCOME,
    KEEP_SLOWEST,
    TailSampler,
)


@dataclass
class FakeRecord:
    trace_id: str
    status: str
    finish: float
    latency: float


def served(trace_id, finish, latency):
    return FakeRecord(trace_id, "served", finish, latency)


class TestValidation:
    def test_negative_slowest_k_rejected(self):
        with pytest.raises(ValueError, match="slowest_k"):
            TailSampler(slowest_k=-1)

    def test_sample_rate_out_of_range_rejected(self):
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError, match="sample_rate"):
                TailSampler(sample_rate=bad)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ValueError, match="window_seconds"):
            TailSampler(window_seconds=0.0)


class TestKeepRules:
    def test_non_served_outcomes_always_kept(self):
        sampler = TailSampler(slowest_k=0, sample_rate=0.0)
        records = [
            FakeRecord("t000001", "degraded", 3.0, 1.0),
            FakeRecord("t000002", "rejected", 4.0, 0.0),
            served("t000003", 5.0, 0.1),
        ]
        kept = sampler.decide(records)
        assert kept == {
            "t000001": KEEP_OUTCOME,
            "t000002": KEEP_OUTCOME,
        }

    def test_slowest_k_per_finish_window(self):
        sampler = TailSampler(slowest_k=1, window_seconds=10.0)
        records = [
            served("t000001", 3.0, 5.0),
            served("t000002", 4.0, 2.0),   # same window, faster
            served("t000003", 15.0, 1.0),  # alone in the next window
        ]
        kept = sampler.decide(records)
        assert kept == {
            "t000001": KEEP_SLOWEST,
            "t000003": KEEP_SLOWEST,
        }

    def test_latency_ties_break_by_trace_id(self):
        sampler = TailSampler(slowest_k=1, window_seconds=10.0)
        records = [
            served("t000009", 3.0, 5.0),
            served("t000002", 4.0, 5.0),
        ]
        assert sampler.decide(records) == {"t000002": KEEP_SLOWEST}

    def test_hash_draw_keeps_everything_at_rate_one(self):
        sampler = TailSampler(slowest_k=0, sample_rate=1.0)
        records = [served(f"t{i:06d}", 1.0, 0.1) for i in range(5)]
        kept = sampler.decide(records)
        assert set(kept.values()) == {KEEP_HASH}
        assert len(kept) == 5

    def test_zero_rate_zero_k_drops_all_clean_serves(self):
        sampler = TailSampler(slowest_k=0, sample_rate=0.0)
        assert sampler.decide([served("t000001", 1.0, 0.1)]) == {}


class TestDeterminism:
    def test_same_inputs_same_kept_set(self):
        records = [
            served(f"t{i:06d}", float(i), float(i % 7)) for i in range(50)
        ] + [FakeRecord("t000099", "degraded", 51.0, 30.0)]
        a = TailSampler(seed=3, slowest_k=2, sample_rate=0.25)
        b = TailSampler(seed=3, slowest_k=2, sample_rate=0.25)
        assert a.decide(records) == b.decide(records)

    def test_input_order_does_not_matter(self):
        records = [
            served(f"t{i:06d}", float(i % 13), float(i % 5)) for i in range(30)
        ]
        sampler = TailSampler(seed=1, slowest_k=2, sample_rate=0.5)
        assert sampler.decide(records) == sampler.decide(records[::-1])

    def test_different_seed_changes_only_hash_keeps(self):
        records = [served(f"t{i:06d}", 1.0, float(i)) for i in range(40)]
        kept_a = TailSampler(seed=0, slowest_k=2, sample_rate=0.3).decide(records)
        kept_b = TailSampler(seed=9, slowest_k=2, sample_rate=0.3).decide(records)
        slowest_a = {t for t, r in kept_a.items() if r == KEEP_SLOWEST}
        slowest_b = {t for t, r in kept_b.items() if r == KEEP_SLOWEST}
        assert slowest_a == slowest_b
        hash_a = {t for t, r in kept_a.items() if r == KEEP_HASH}
        hash_b = {t for t, r in kept_b.items() if r == KEEP_HASH}
        assert hash_a != hash_b


class TestStats:
    def test_counts_by_reason(self):
        decisions = {
            "t000001": KEEP_OUTCOME,
            "t000002": KEEP_SLOWEST,
            "t000003": KEEP_SLOWEST,
            "t000004": KEEP_HASH,
        }
        stats = TailSampler().stats(decisions, total=10)
        assert stats == {
            "total": 10,
            "kept": 4,
            "dropped": 6,
            "kept_by_reason": {
                KEEP_OUTCOME: 1, KEEP_SLOWEST: 2, KEEP_HASH: 1,
            },
        }
