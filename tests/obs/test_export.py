"""Tests for span/metric exporters."""

import json

from repro.obs.export import (
    chrome_trace,
    format_stage_summary,
    spans_to_records,
    stage_summary,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.trace import Span, Tracer


class TickClock:
    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def now(self):
        value = self.t
        self.t += self.step
        return value


def small_trace():
    tracer = Tracer(TickClock())
    with tracer.span("run", pipeline="udf"):
        with tracer.span("llm:call", input_tokens=10, output_tokens=5):
            pass
    return tracer


class TestSpanRecords:
    def test_records_carry_links_and_attrs(self):
        tracer = small_trace()
        records = spans_to_records(tracer.spans)
        assert records[0]["name"] == "run"
        assert records[0]["parent_id"] is None
        assert records[1]["parent_id"] == records[0]["span_id"]
        assert records[1]["attributes"]["input_tokens"] == 10

    def test_jsonl_round_trip(self, tmp_path):
        tracer = small_trace()
        path = write_spans_jsonl(tracer.spans, tmp_path / "spans.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "run"

    def test_jsonl_empty(self, tmp_path):
        path = write_spans_jsonl([], tmp_path / "spans.jsonl")
        assert path.read_text() == ""


class TestChromeTrace:
    def test_events_shape(self):
        tracer = small_trace()
        payload = chrome_trace(tracer.spans, process_name="test")
        meta, run, call = payload["traceEvents"]
        assert meta["ph"] == "M"
        assert meta["args"]["name"] == "test"
        assert run["ph"] == "X"
        assert run["name"] == "run"
        assert run["ts"] == 0.0
        # clock ticks once per now(): run opens at 0, call at 1, call
        # closes at 2, run at 3 — so durations are 3 s and 1 s in µs
        assert run["dur"] == 3e6
        assert call["dur"] == 1e6
        assert call["tid"] == run["tid"]

    def test_args_are_jsonable(self):
        tracer = Tracer(TickClock())
        with tracer.span("s", obj=object()):
            pass
        payload = chrome_trace(tracer.spans)
        args = payload["traceEvents"][1]["args"]
        assert isinstance(args["obj"], str)
        json.dumps(payload)

    def test_write_is_valid_json(self, tmp_path):
        tracer = small_trace()
        path = write_chrome_trace(tracer.spans, tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == 3


class TestStageSummary:
    def make_forest(self):
        root = Span("run", "s1", None, 0.0)
        root.end = 10.0
        call = Span("llm:call", "s2", "s1", 1.0,
                    attributes={"input_tokens": 100, "output_tokens": 20})
        call.end = 9.0
        root.children.append(call)
        return [root]

    def test_self_time_sums_to_total(self):
        records = stage_summary(self.make_forest())
        by_stage = {r["stage"]: r for r in records}
        assert by_stage["llm:call"]["self_s"] == 8.0
        assert by_stage["run"]["self_s"] == 2.0
        assert sum(r["self_s"] for r in records) == 10.0
        assert sum(r["share"] for r in records) == 1.0

    def test_token_attribution(self):
        records = stage_summary(self.make_forest())
        call = next(r for r in records if r["stage"] == "llm:call")
        assert call["input_tokens"] == 100
        assert call["output_tokens"] == 20

    def test_sorted_by_self_time(self):
        records = stage_summary(self.make_forest())
        assert [r["stage"] for r in records] == ["llm:call", "run"]

    def test_overlapping_children_clamp_parent_self_time(self):
        root = Span("run", "s1", None, 0.0)
        root.end = 4.0
        # two parallel children overlap: 3 s + 3 s inside a 4 s parent
        for i in (2, 3):
            child = Span("llm:call", f"s{i}", "s1", 0.5)
            child.end = 3.5
            root.children.append(child)
        records = stage_summary([root])
        by_stage = {r["stage"]: r for r in records}
        # the parent's self time clamps at zero instead of going negative,
        # and over-covered time never produces an (unaccounted) row
        assert by_stage["run"]["self_s"] == 0.0
        assert by_stage["llm:call"]["self_s"] == 6.0
        assert "(unaccounted)" not in by_stage

    def test_empty_forest(self):
        assert stage_summary([]) == []

    def test_format_renders_table(self):
        text = format_stage_summary(
            stage_summary(self.make_forest()), title="Stages"
        )
        lines = text.splitlines()
        assert lines[0] == "Stages"
        assert "llm:call" in text
        assert "80.0%" in text
