"""The telemetry each LLM-stack component actually emits."""

import pytest

from repro.errors import (
    LLMError,
    RetryBudgetExceededError,
    TransientLLMError,
)
from repro.llm.cache import CachingClient, PromptCache
from repro.llm.client import ChatResponse, ScriptedClient
from repro.llm.parallel import ParallelDispatcher, SimulatedClock
from repro.llm.resilience import CircuitBreaker, RetryPolicy, RetryingClient
from repro.obs import Telemetry


def enabled_telemetry():
    return Telemetry.on(SimulatedClock(1))


class FlakyClient:
    """Fails transiently ``failures`` times, then succeeds forever."""

    model_name = "flaky"

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        self.calls += 1
        if self.calls <= self.failures:
            raise TransientLLMError("glitch")
        from repro.llm.usage import Usage

        return ChatResponse("ok", Usage(1, 1, 1))


class TestCachingClientTelemetry:
    def test_hit_miss_counters_and_spans(self):
        tel = enabled_telemetry()
        client = CachingClient(
            ScriptedClient(["a"]), telemetry=tel
        )
        client.complete("p")
        client.complete("p")
        assert tel.metrics.value("llm.cache.misses") == 1
        assert tel.metrics.value("llm.cache.hits") == 1
        outcomes = [
            s.attributes["outcome"]
            for s in tel.tracer.spans
            if s.name == "llm:cache"
        ]
        assert outcomes == ["miss", "hit"]

    def test_disabled_records_nothing(self):
        client = CachingClient(ScriptedClient(["a"]))
        client.complete("p")
        client.complete("p")
        # plain cache accounting still works without telemetry
        assert client.cache.hits == 1
        assert client.cache.misses == 1

    def test_results_identical_with_and_without_telemetry(self):
        plain = CachingClient(ScriptedClient(["a", "b"]))
        traced = CachingClient(
            ScriptedClient(["a", "b"]), telemetry=enabled_telemetry()
        )
        for prompt in ("p1", "p2", "p1"):
            assert plain.complete(prompt).text == traced.complete(prompt).text
        assert plain.cache.hits == traced.cache.hits
        assert plain.cache.misses == traced.cache.misses


class TestRetryingClientTelemetry:
    def test_attempt_spans_and_counters(self):
        tel = enabled_telemetry()
        clock = SimulatedClock(1)
        client = RetryingClient(
            FlakyClient(2),
            RetryPolicy(max_attempts=4, jitter=0.0),
            clock=clock,
            telemetry=tel,
        )
        assert client.complete("p").text == "ok"
        assert tel.metrics.value("llm.retry.attempts") == 3
        assert tel.metrics.value("llm.retry.retries") == 2
        assert tel.metrics.value("llm.retry.successes") == 1
        outcomes = [
            s.attributes["outcome"]
            for s in tel.tracer.spans
            if s.name == "llm:attempt"
        ]
        assert outcomes == ["retry", "retry", "success"]

    def test_backoff_spans_carry_delay(self):
        # tracer and retry layer share one virtual clock, so the backoff
        # wait is visible as the backoff span's duration
        clock = SimulatedClock(1)
        tel = Telemetry.on(clock)
        client = RetryingClient(
            FlakyClient(1),
            RetryPolicy(max_attempts=2, base_delay=0.5, jitter=0.0),
            clock=clock,
            telemetry=tel,
        )
        client.complete("p")
        backoffs = [s for s in tel.tracer.spans if s.name == "llm:backoff"]
        assert len(backoffs) == 1
        assert backoffs[0].attributes["delay_s"] == 0.5
        # the virtual wait really happened inside the backoff span
        assert backoffs[0].duration == pytest.approx(0.5)
        assert tel.metrics.value("llm.retry.backoff_seconds_total") == 0.5
        hist = tel.metrics.histogram("llm.retry.backoff_seconds")
        assert hist.count == 1

    def test_exhausted_outcome(self):
        tel = enabled_telemetry()
        client = RetryingClient(
            FlakyClient(10),
            RetryPolicy(max_attempts=2, jitter=0.0),
            clock=SimulatedClock(1),
            telemetry=tel,
        )
        with pytest.raises(RetryBudgetExceededError):
            client.complete("p")
        assert tel.metrics.value("llm.retry.exhausted") == 1
        last = [s for s in tel.tracer.spans if s.name == "llm:attempt"][-1]
        assert last.attributes["outcome"] == "exhausted"

    def test_fatal_outcome(self):
        tel = enabled_telemetry()
        client = RetryingClient(
            ScriptedClient([]),  # scripting miss raises plain LLMError
            RetryPolicy(max_attempts=3),
            clock=SimulatedClock(1),
            telemetry=tel,
        )
        with pytest.raises(LLMError):
            client.complete("p")
        assert tel.metrics.value("llm.retry.fatal") == 1
        assert tel.metrics.value("llm.retry.attempts") == 1


class TestBreakerTelemetry:
    def test_state_gauge_and_transitions(self):
        tel = enabled_telemetry()
        clock = SimulatedClock(1)
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown=10.0, clock=clock, telemetry=tel
        )
        breaker.record_failure()
        breaker.record_failure()  # trips open
        assert tel.metrics.value("llm.breaker.state") == 2
        assert tel.metrics.value("llm.breaker.trips") == 1
        assert (
            tel.metrics.value(
                "llm.breaker.transitions", from_state="closed", to_state="open"
            )
            == 1
        )
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert tel.metrics.value("llm.breaker.state") == 1
        breaker.record_success()
        assert tel.metrics.value("llm.breaker.state") == 0
        assert (
            tel.metrics.value(
                "llm.breaker.transitions",
                from_state="half_open",
                to_state="closed",
            )
            == 1
        )

    def test_short_circuit_metric(self):
        from repro.errors import CircuitOpenError

        tel = enabled_telemetry()
        clock = SimulatedClock(1)
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.record_failure()
        client = RetryingClient(
            FlakyClient(0),
            clock=clock,
            breaker=breaker,
            telemetry=tel,
        )
        with pytest.raises(CircuitOpenError):
            client.complete("p")
        assert tel.metrics.value("llm.retry.short_circuits") == 1


class TestDispatcherTelemetry:
    def test_call_spans_parented_under_dispatch(self):
        tel = enabled_telemetry()
        dispatcher = ParallelDispatcher(1, telemetry=tel)
        client = ScriptedClient({"p1": "a", "p2": "b"})
        dispatcher.dispatch(client, ["p1", "p2"], labels="stage")
        (dispatch,) = [s for s in tel.tracer.spans if s.name == "dispatch"]
        calls = [s for s in tel.tracer.spans if s.name == "llm:call"]
        assert len(calls) == 2
        assert all(c.parent_id == dispatch.span_id for c in calls)
        assert dispatch.attributes["prompts"] == 2

    def test_call_spans_cross_thread_parenting(self):
        tel = enabled_telemetry()
        dispatcher = ParallelDispatcher(4, telemetry=tel)
        client = ScriptedClient({"p1": "a", "p2": "b", "p3": "c"})
        dispatcher.dispatch(client, ["p1", "p2", "p3"])
        (dispatch,) = [s for s in tel.tracer.spans if s.name == "dispatch"]
        assert len(dispatch.children) == 3

    def test_dedup_and_occupancy_metrics(self):
        tel = enabled_telemetry()
        dispatcher = ParallelDispatcher(1, telemetry=tel)
        client = ScriptedClient({"p1": "a"})
        dispatcher.dispatch(client, ["p1", "p1", "p1"])
        assert tel.metrics.value("dispatch.dispatches") == 1
        assert tel.metrics.value("dispatch.calls") == 1
        assert tel.metrics.value("dispatch.dedup_followers") == 2
        snap = tel.metrics.snapshot()
        assert snap["dispatch.in_flight.max"] == 1
        assert snap["dispatch.queue_depth"] == 0

    def test_token_counters_by_stage(self):
        tel = enabled_telemetry()
        dispatcher = ParallelDispatcher(1, telemetry=tel)
        client = ScriptedClient({"p1": "a b c"})
        dispatcher.dispatch(client, ["p1"], labels="udf:map")
        assert tel.metrics.value("llm.calls", stage="udf:map") == 1
        assert tel.metrics.value("llm.tokens.output", stage="udf:map") > 0
        (call,) = [s for s in tel.tracer.spans if s.name == "llm:call"]
        assert call.attributes["output_tokens"] > 0
        assert call.attributes["cached"] is False

    def test_error_metric_and_span_attr(self):
        tel = enabled_telemetry()
        dispatcher = ParallelDispatcher(1, telemetry=tel)
        client = ScriptedClient({})  # every prompt is a scripting miss
        outcomes = dispatcher.dispatch(client, ["p1"], capture_errors=True)
        assert not outcomes[0].ok
        assert tel.metrics.value("dispatch.errors") == 1
        (call,) = [s for s in tel.tracer.spans if s.name == "llm:call"]
        assert call.attributes["error"] == "LLMError"

    def test_disabled_dispatch_identical_results(self):
        plain = ParallelDispatcher(1)
        traced = ParallelDispatcher(1, telemetry=enabled_telemetry())
        client_a = ScriptedClient({"p": "x"})
        client_b = ScriptedClient({"p": "x"})
        a = plain.dispatch(client_a, ["p", "p"])
        b = traced.dispatch(client_b, ["p", "p"])
        assert [o.text for o in a] == [o.text for o in b]
