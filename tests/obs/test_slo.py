"""Tests for declarative SLOs, error budgets, and burn-rate alerts."""

import pytest

from repro.obs.slo import (
    AVAILABILITY,
    FAST,
    LATENCY,
    SLO,
    SLOTracker,
    SLOW,
    default_serving_slos,
)


def _availability(objective=0.9, **kwargs):
    defaults = dict(
        fast_burn=5.0, slow_burn=2.0, fast_windows=2, slow_windows=4
    )
    defaults.update(kwargs)
    return SLO(name="avail", kind=AVAILABILITY, objective=objective, **defaults)


class TestSLOValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SLO(name="x", kind="throughput", objective=0.9)

    def test_objective_bounds(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="objective"):
                SLO(name="x", kind=AVAILABILITY, objective=bad)

    def test_latency_needs_target(self):
        with pytest.raises(ValueError, match="latency_target"):
            SLO(name="x", kind=LATENCY, objective=0.9)
        with pytest.raises(ValueError, match="latency_target"):
            SLO(name="x", kind=LATENCY, objective=0.9, latency_target=0.0)

    def test_burns_positive(self):
        with pytest.raises(ValueError, match="burn"):
            SLO(name="x", kind=AVAILABILITY, objective=0.9, fast_burn=0.0)

    def test_fast_lookback_not_longer_than_slow(self):
        with pytest.raises(ValueError, match="lookback"):
            SLO(
                name="x", kind=AVAILABILITY, objective=0.9,
                fast_windows=9, slow_windows=8,
            )

    def test_error_budget(self):
        assert _availability(objective=0.99).error_budget == pytest.approx(0.01)

    def test_as_record_round_trips_fields(self):
        record = _availability().as_record()
        assert record["kind"] == AVAILABILITY
        assert record["latency_target"] is None
        assert record["fast_windows"] == 2


class TestTrackerValidation:
    def test_needs_slos(self):
        with pytest.raises(ValueError, match="at least one"):
            SLOTracker([])

    def test_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOTracker([_availability(), _availability()])

    def test_bad_window(self):
        with pytest.raises(ValueError, match="window_seconds"):
            SLOTracker([_availability()], window_seconds=0.0)

    def test_unknown_slo_raises(self):
        tracker = SLOTracker([_availability()])
        with pytest.raises(KeyError):
            tracker.record("nope", 0.0, True)
        with pytest.raises(KeyError):
            tracker.budget("nope")


class TestBudgetAccounting:
    def test_budget_consumed_math(self):
        tracker = SLOTracker([_availability(objective=0.9)], window_seconds=5.0)
        for _ in range(18):
            tracker.record("avail", 1.0, True)
        for _ in range(2):
            tracker.record("avail", 1.0, False)
        budget = tracker.budget("avail")
        # bad fraction 0.1 against a 0.1 budget: exactly spent
        assert budget["bad_fraction"] == pytest.approx(0.1)
        assert budget["budget_consumed"] == pytest.approx(1.0)
        assert budget["budget_remaining"] == pytest.approx(0.0)

    def test_empty_budget_is_zero(self):
        tracker = SLOTracker([_availability()])
        assert tracker.budget("avail")["budget_consumed"] == 0.0

    def test_budgets_lists_every_slo(self):
        tracker = SLOTracker(default_serving_slos())
        assert set(tracker.budgets()) == {"availability", "latency"}


class TestBurnAlerts:
    def test_fast_burn_fires_on_window_close(self):
        # objective 0.9 → budget 0.1; an all-bad window burns at 10x
        tracker = SLOTracker([_availability(objective=0.9)], window_seconds=5.0)
        tracker.record("avail", 1.0, False)
        tracker.record("avail", 2.0, False)
        # window 0 is full of bad events but still open: no alert yet
        assert tracker.alerts == []
        tracker.record("avail", 6.0, False)  # first event of window 1
        fast = next(a for a in tracker.alerts if a.severity == FAST)
        assert fast.burn_rate == pytest.approx(10.0)
        assert fast.window == 0
        assert fast.time == pytest.approx(5.0)
        assert fast.bad == 2 and fast.total == 2

    def test_alerts_are_edge_triggered(self):
        tracker = SLOTracker(
            [_availability(objective=0.9, fast_burn=5.0)], window_seconds=5.0
        )
        # four consecutive all-bad windows: the condition holds at every
        # close, but each severity fires exactly once
        for w in range(4):
            tracker.record("avail", w * 5.0 + 1.0, False)
        tracker.finalize(25.0)
        fast_alerts = [a for a in tracker.alerts if a.severity == FAST]
        assert len(fast_alerts) == 1

    def test_refires_after_condition_clears(self):
        slo = _availability(
            objective=0.9, fast_burn=5.0, fast_windows=1, slow_windows=1
        )
        tracker = SLOTracker([slo], window_seconds=5.0)
        tracker.record("avail", 1.0, False)  # window 0: burning
        for t in (6.0, 7.0, 8.0):  # window 1: healthy
            tracker.record("avail", t, True)
        tracker.record("avail", 11.0, False)  # window 2: burning again
        tracker.finalize(15.0)
        fast_alerts = [a for a in tracker.alerts if a.severity == FAST]
        assert len(fast_alerts) == 2
        assert [a.window for a in fast_alerts] == [0, 2]

    def test_slow_burn_needs_sustained_badness(self):
        # 1 bad of 10 per window: burn 1.0 against slow_burn 2.0 — quiet
        tracker = SLOTracker(
            [_availability(objective=0.9, slow_windows=4)], window_seconds=5.0
        )
        for w in range(6):
            base = w * 5.0
            tracker.record("avail", base + 0.5, False)
            for i in range(9):
                tracker.record("avail", base + 1.0 + i * 0.1, True)
        tracker.finalize(30.0)
        assert [a for a in tracker.alerts if a.severity == SLOW] == []

    def test_finalize_closes_the_last_window(self):
        tracker = SLOTracker([_availability(objective=0.9)], window_seconds=5.0)
        tracker.record("avail", 1.0, False)
        assert tracker.alerts == []
        tracker.finalize()
        assert tracker.alerts  # the lone all-bad window fired on seal

    def test_on_alert_callback_fires_at_alert_time(self):
        seen = []
        tracker = SLOTracker(
            [_availability(objective=0.9)],
            window_seconds=5.0,
            on_alert=seen.append,
        )
        tracker.record("avail", 1.0, False)
        tracker.finalize()
        assert [a.as_record() for a in seen] == tracker.alert_timeline()

    def test_timeline_is_deterministic(self):
        def run():
            tracker = SLOTracker(default_serving_slos(), window_seconds=5.0)
            for w in range(8):
                base = w * 5.0
                good = w % 3 != 0
                tracker.record("availability", base + 1.0, good)
                tracker.record("latency", base + 1.5, not good)
            tracker.finalize(45.0)
            return tracker.alert_timeline()

        assert run() == run()


class TestDefaultServingSlos:
    def test_shapes(self):
        avail, latency = default_serving_slos()
        assert avail.kind == AVAILABILITY
        assert latency.kind == LATENCY
        assert latency.latency_target == 20.0
        assert avail.fast_windows <= avail.slow_windows
