"""Request-scoped serving traces end-to-end (tentpole acceptance).

The trace log must be provably passive: a traced run produces
byte-identical outcomes, reports, and SLO artifacts to an untraced
one.  Every materialized span tree must tile its request's
offer-to-finish interval exactly (zero unaccounted), shared batch
flushes must link one wave span from every member request, and the
whole pipeline — records, sampler verdicts, materialized spans — must
be byte-reproducible run over run.
"""

import json

import pytest

from repro.harness.benchserve import (
    build_observability,
    default_config,
    default_tenants,
    measure_capacity,
    run_level,
    run_slo_loadtest,
    run_traced_loadtest,
    trace_level_record,
    trace_spans,
)
from repro.obs.export import spans_to_records, stage_summary
from repro.obs.sampler import TailSampler
from repro.serve.batcher import BatchingConfig
from repro.serve.trace import (
    ServeTraceLog,
    materialize_kept,
    materialize_request,
)
from repro.swan.benchmark import load_benchmark_subset

HORIZON = 60.0

#: deep overload — enough pressure for sheds, reaps, and degradations
OVERLOAD = 8.0


@pytest.fixture(scope="module")
def serve_swan():
    return load_benchmark_subset(1, ["superhero"])


@pytest.fixture(scope="module")
def capacity(serve_swan):
    return measure_capacity(
        serve_swan, default_config(), default_tenants(("superhero",)),
        seed=0, horizon=HORIZON,
    )


def _run(serve_swan, capacity, *, trace=None, batching=None):
    return run_level(
        serve_swan, default_config(), default_tenants(("superhero",)),
        OVERLOAD, capacity, seed=0, horizon=HORIZON,
        trace=trace, batching=batching,
    )


@pytest.fixture(scope="module")
def traced_run(serve_swan, capacity):
    log = ServeTraceLog()
    report, record = _run(serve_swan, capacity, trace=log)
    return report, record, log


@pytest.fixture(scope="module")
def traced_batched_run(serve_swan, capacity):
    log = ServeTraceLog()
    report, record = _run(
        serve_swan, capacity, trace=log, batching=BatchingConfig()
    )
    return report, record, log


class TestTraceInvisibility:
    def test_traced_outcomes_byte_identical_to_untraced(
        self, serve_swan, capacity, traced_run
    ):
        _, untraced = _run(serve_swan, capacity)
        traced = traced_run[1]
        assert json.dumps(untraced, sort_keys=True) == json.dumps(
            traced, sort_keys=True
        )

    def test_traced_batched_outcomes_byte_identical(
        self, serve_swan, capacity, traced_batched_run
    ):
        _, untraced = _run(serve_swan, capacity, batching=BatchingConfig())
        assert json.dumps(untraced, sort_keys=True) == json.dumps(
            traced_batched_run[1], sort_keys=True
        )

    def test_slo_artifacts_unchanged_by_tracing(self, tmp_path):
        common = dict(
            horizon=40.0, multipliers=(0.5, 4.0), databases=("superhero",),
        )
        sink_off = tmp_path / "incidents_off.jsonl"
        serve_off, slo_off = run_slo_loadtest(
            incident_sink=sink_off, **common
        )
        sink_on = tmp_path / "incidents_on.jsonl"
        serve_on, slo_on, traces, forest = run_traced_loadtest(
            incident_sink=sink_on, **common
        )
        assert json.dumps(serve_off, sort_keys=True) == json.dumps(
            serve_on, sort_keys=True
        )
        assert json.dumps(slo_off, sort_keys=True) == json.dumps(
            slo_on, sort_keys=True
        )
        assert sink_off.read_bytes() == sink_on.read_bytes()
        assert traces["levels"]


class TestExactAttribution:
    def test_every_trace_tiles_with_zero_unaccounted(self, traced_run):
        report, _, log = traced_run
        assert len(log.records) == report.offered
        waves = {wave.wave_id: wave for wave in log.waves}
        statuses = set()
        for record in log.records:
            root = materialize_request(record, waves)
            statuses.add((record.status, record.reason))
            rows = stage_summary([root])
            assert not any(
                row["stage"] == "(unaccounted)" for row in rows
            ), f"unaccounted time in {record.trace_id} {record.status}"
            for span in root.walk():
                assert span.start >= root.start - 1e-9
                assert span.end <= root.end + 1e-9
        # deep overload exercises more than one terminal outcome
        assert len(statuses) > 1

    def test_batched_traces_also_tile_exactly(self, traced_batched_run):
        _, _, log = traced_batched_run
        waves = {wave.wave_id: wave for wave in log.waves}
        for record in log.records:
            rows = stage_summary([materialize_request(record, waves)])
            assert not any(
                row["stage"] == "(unaccounted)" for row in rows
            )

    def test_level_record_reports_zero_unaccounted_share(self, traced_run):
        _, _, log = traced_run
        level = trace_level_record(OVERLOAD, log, TailSampler())
        assert level["max_unaccounted_share"] == 0.0
        assert level["sampler"]["kept"] == len(level["traces"])


class TestSharedBatchLinks:
    def test_one_wave_span_linked_from_every_member(
        self, traced_batched_run
    ):
        _, _, log = traced_batched_run
        shared = [wave for wave in log.waves if len(wave.members) > 1]
        assert shared, "overload with batching never shared a flush"
        for wave in shared:
            for trace_id in wave.members:
                record = log.get(trace_id)
                assert record is not None
                assert wave.wave_id in record.waves
                root = materialize_request(
                    record, {wave.wave_id: wave}
                )
                links = [
                    span for span in root.walk()
                    if span.name == "serve:batch.dispatch"
                    and span.attributes.get("link") == wave.wave_id
                ]
                assert len(links) == 1

    def test_kept_forest_exports_linked_wave_spans(
        self, traced_batched_run
    ):
        _, _, log = traced_batched_run
        kept = TailSampler().decide(log.records)
        forest = materialize_kept(log, kept)
        records = spans_to_records(trace_spans(forest))
        wave_ids = {
            r["span_id"] for r in records if r["name"] == "serve:batch.wave"
        }
        links = [
            r for r in records if r["name"] == "serve:batch.dispatch"
        ]
        assert wave_ids and links
        for link in links:
            assert link["attributes"]["link"] in wave_ids


class TestByteReproducibility:
    def test_trace_payload_and_spans_reproduce(self):
        def sweep():
            _, _, traces, forest = run_traced_loadtest(
                horizon=40.0, multipliers=(0.5, 4.0),
                databases=("superhero",),
            )
            return (
                json.dumps(traces, sort_keys=True),
                json.dumps(
                    spans_to_records(trace_spans(forest)), sort_keys=True
                ),
            )

        assert sweep() == sweep()

    def test_trace_ids_are_pure_functions_of_request_ids(self, traced_run):
        _, _, log = traced_run
        for record in log.records:
            assert record.trace_id == f"t{record.request_id:06d}"
