"""Server-level tests for cross-request continuous batching.

The contract under test: with ``max_concurrent=1`` the batched server
is byte-identical to the unbatched one (no partner can ever share a
batch, so batching must change nothing), and with real concurrency it
coalesces overlapping work across tenants while never answering past a
deadline.
"""

import pytest

from repro.serve.batcher import BatchingConfig
from repro.serve.request import QueryRequest
from repro.serve.server import QueryServer, ServerConfig
from repro.serve.traffic import generate_traffic
from repro.harness.benchserve import default_tenants, offered_rps
from repro.swan.benchmark import load_benchmark_subset


@pytest.fixture(scope="module")
def serve_swan():
    return load_benchmark_subset(1, ["superhero"])


def _traffic(swan, *, horizon=40.0, rps=0.3, seed=0):
    tenants = default_tenants(("superhero",))
    scaled = [t.scaled(rps / offered_rps(tenants)) for t in tenants]
    policies = {t.name: t.policy() for t in scaled}
    return generate_traffic(swan, scaled, horizon=horizon, seed=seed), policies


def _run(swan, requests, policies, *, max_concurrent, batching):
    config = ServerConfig(
        workers=4, max_concurrent=max_concurrent, queue_limit=24,
        batching=batching,
    )
    with QueryServer(swan, config, policies=policies) as server:
        return server.run(requests)


def _twin_requests(swan, qid="superhero_q01", deadline=1000.0):
    """The same question offered by two tenants at the same instant."""
    question = swan.question(qid)
    return [
        QueryRequest(
            request_id=index,
            tenant=tenant,
            database="superhero",
            sql=question.blend_sql,
            arrival=0.0,
            qid=qid,
            deadline_seconds=deadline,
        )
        for index, tenant in enumerate(("alpha", "beta"))
    ]


class TestSerialByteIdentity:
    """max_concurrent=1: batching on == batching off, bit for bit."""

    @pytest.mark.parametrize("persist", [True, False])
    def test_outcomes_and_usage_identical(self, serve_swan, persist):
        requests, policies = _traffic(serve_swan)
        off = _run(
            serve_swan, requests, policies, max_concurrent=1, batching=None,
        )
        on = _run(
            serve_swan, requests, policies, max_concurrent=1,
            batching=BatchingConfig(persist=persist),
        )
        assert [o.as_record() for o in on.outcomes] == [
            o.as_record() for o in off.outcomes
        ]
        assert on.usage.calls == off.usage.calls
        assert on.usage.input_tokens == off.usage.input_tokens
        assert on.usage.output_tokens == off.usage.output_tokens
        # the batched run still reports its (empty of coalescing) stats
        assert on.batching is not None
        assert off.batching is None
        assert on.batching["coalesced_calls"] == 0


class TestCrossTenantSingleFlight:
    def test_identical_queries_share_one_dispatch(self, serve_swan):
        requests = _twin_requests(serve_swan)
        solo = _run(
            serve_swan, requests[:1], {}, max_concurrent=3,
            batching=BatchingConfig(),
        )
        both = _run(
            serve_swan, requests, {}, max_concurrent=3,
            batching=BatchingConfig(),
        )
        assert all(o.answered for o in both.outcomes)
        # every work item was wanted by both tenants: the second request
        # rides the first's calls instead of paying again
        assert both.batching["coalesced_calls"] >= 1
        assert both.usage.calls == solo.usage.calls
        # shared-call tokens were attributed to both tenants, fairly
        shared = [o.shared_tokens for o in both.outcomes]
        assert all(s > 0 for s in shared)
        total = sum(o.input_tokens + o.output_tokens for o in both.outcomes)
        assert total == both.usage.input_tokens + both.usage.output_tokens

    def test_accounting_balances_under_batching(self, serve_swan):
        requests, policies = _traffic(serve_swan, rps=0.6)
        report = _run(
            serve_swan, requests, policies, max_concurrent=3,
            batching=BatchingConfig(),
        )
        assert report.accounted()
        assert (
            report.offered
            == report.served + report.degraded + report.rejected
        )

    def test_no_answer_lands_past_its_deadline(self, serve_swan):
        requests, policies = _traffic(serve_swan, rps=0.8)
        report = _run(
            serve_swan, requests, policies, max_concurrent=3,
            batching=BatchingConfig(),
        )
        for outcome in report.outcomes:
            if outcome.answered:
                assert (
                    outcome.finish_time
                    <= outcome.request.deadline_at + 1e-9
                )


class TestBatchingSavesWork:
    def test_concurrent_load_pays_fewer_calls(self, serve_swan):
        requests, policies = _traffic(serve_swan, rps=0.8)
        off = _run(
            serve_swan, requests, policies, max_concurrent=3, batching=None,
        )
        on = _run(
            serve_swan, requests, policies, max_concurrent=3,
            batching=BatchingConfig(),
        )
        assert on.usage.calls < off.usage.calls
        assert on.batching["batch_occupancy"] > 0
