"""Tests for the cross-request batch former (`repro.serve.batcher`)."""

import math
import random
from types import SimpleNamespace

import pytest

from repro.serve.batcher import (
    DEADLINE_FORCED,
    SIZE_TRIGGERED,
    WINDOW_EXPIRED,
    BatchingConfig,
    CrossRequestBatcher,
    PendingRequest,
    split_fairly,
)
from repro.serve.request import QueryRequest


class _FixedPolicy:
    """A stand-in batch policy with one size for every call."""

    def __init__(self, size):
        self.size = size

    def batch_size(self, call):
        return self.size


class _Call:
    def __init__(self, sig="map:hero:alignment"):
        self._sig = sig

    def signature(self):
        return self._sig


def _member(rid, *, arrival=0.0, deadline=60.0, tenant="t"):
    request = QueryRequest(
        request_id=rid,
        tenant=tenant,
        database="superhero",
        sql="SELECT 1",
        arrival=arrival,
        deadline_seconds=deadline,
    )
    return PendingRequest(request, start=arrival, queue_wait=0.0)


def _batcher(window=2.0, max_batch=None, size=8, persist=True):
    config = BatchingConfig(window=window, max_batch=max_batch, persist=persist)
    return CrossRequestBatcher(config, _FixedPolicy(size))


class TestBatchingConfig:
    def test_defaults(self):
        config = BatchingConfig()
        assert config.window == 2.0
        assert config.max_batch is None
        assert config.persist is True

    def test_nonpositive_window_rejected(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError):
                BatchingConfig(window=bad)

    def test_nonpositive_max_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchingConfig(max_batch=0)

    def test_max_batch_overrides_policy_threshold(self):
        batcher = _batcher(max_batch=3, size=8)
        assert batcher.chunk_size_for(_Call()) == 3


class TestSplitFairly:
    def test_conserves_total_exactly(self):
        rng = random.Random(7)
        for _ in range(200):
            n = rng.randint(1, 6)
            members = [_member(i) for i in range(n)]
            weights = [rng.random() for _ in range(n)]
            total = rng.randint(0, 10_000)
            split = split_fairly(members, weights, total)
            assert sum(split) == total
            assert all(s >= 0 for s in split)

    def test_zero_weights_split_evenly(self):
        members = [_member(0), _member(1)]
        assert sum(split_fairly(members, [0.0, 0.0], 7)) == 7

    def test_deterministic(self):
        members = [_member(i) for i in range(3)]
        weights = [1.0, 2.0, 3.0]
        assert split_fairly(members, weights, 100) == split_fairly(
            members, weights, 100
        )


class TestSingleFlight:
    def test_same_key_from_two_requests_is_one_item(self):
        batcher = _batcher()
        call = _Call()
        a, b = _member(0), _member(1)
        batcher.enqueue_keys("superhero", call, [("x",)], a,
                             chunk_size=8, now=0.0)
        batcher.enqueue_keys("superhero", call, [("x",)], b,
                             chunk_size=8, now=0.5)
        assert batcher.items_enqueued == 1
        assert a.outstanding == 1 and b.outstanding == 1
        batcher.expedite(1.0)
        # expedite is the max_concurrent=1 path, which also disables
        # tail retention — mirror the server's pairing here
        (flushed,) = batcher.collect_due(1.0, retain_tails=False)
        ((payload, requesters),) = flushed.items
        assert payload == ("x",)
        assert requesters == [a, b]
        assert batcher.items_coalesced == 1

    def test_same_request_twice_attaches_once(self):
        batcher = _batcher()
        a = _member(0)
        call = _Call()
        batcher.enqueue_keys("superhero", call, [("x",)], a,
                             chunk_size=8, now=0.0)
        batcher.enqueue_keys("superhero", call, [("x",)], a,
                             chunk_size=8, now=0.0)
        assert a.outstanding == 1

    def test_different_signatures_do_not_merge(self):
        batcher = _batcher()
        a = _member(0)
        batcher.enqueue_keys("superhero", _Call("sig1"), [("x",)], a,
                             chunk_size=8, now=0.0)
        batcher.enqueue_keys("superhero", _Call("sig2"), [("x",)], a,
                             chunk_size=8, now=0.0)
        assert batcher.items_enqueued == 2


class TestReleasePolicy:
    def test_window_release_when_below_threshold(self):
        batcher = _batcher(window=2.0, size=8)
        batcher.enqueue_keys("superhero", _Call(), [("x",)], _member(0),
                             chunk_size=8, now=1.0)
        (release,) = batcher.drain_releases()
        assert release == pytest.approx(3.0)
        assert not batcher.has_due(2.9)
        assert batcher.has_due(3.0)

    def test_size_trigger_releases_immediately(self):
        batcher = _batcher(size=2)
        member = _member(0)
        batcher.enqueue_keys("superhero", _Call(), [("x",), ("y",)], member,
                             chunk_size=2, now=1.0)
        assert batcher.drain_releases()[-1] == pytest.approx(1.0)
        (flushed,) = batcher.collect_due(1.0)
        assert flushed.trigger == SIZE_TRIGGERED

    def test_deadline_clamps_release_before_window(self):
        batcher = _batcher(window=10.0, size=8)
        member = _member(0, arrival=0.0, deadline=3.0)
        batcher.enqueue_keys("superhero", _Call(), [("x",)], member,
                             chunk_size=8, now=1.0)
        (release,) = batcher.drain_releases()
        assert release == pytest.approx(3.0)  # deadline, not 1.0 + 10.0
        (flushed,) = batcher.collect_due(3.0)
        assert flushed.trigger == DEADLINE_FORCED

    def test_no_release_ever_exceeds_a_member_deadline(self):
        """Property: release_at <= min member deadline, whatever arrives.

        Randomized enqueue sequences (arrivals move forward, deadlines
        are always in each member's future) must never schedule a
        group's release past the earliest waiting deadline.
        """
        rng = random.Random(17)
        for trial in range(50):
            batcher = _batcher(
                window=rng.choice([0.5, 2.0, 10.0]),
                size=rng.choice([2, 4, 8]),
            )
            calls = [_Call(f"sig{i}") for i in range(3)]
            now = 0.0
            for step in range(30):
                now += rng.random() * 2.0
                member = _member(
                    1000 * trial + step,
                    arrival=now,
                    deadline=0.1 + rng.random() * 20.0,
                )
                keys = [(f"k{rng.randint(0, 9)}",) for _ in range(
                    rng.randint(1, 4)
                )]
                batcher.enqueue_keys(
                    "superhero", rng.choice(calls), keys, member,
                    chunk_size=4, now=now,
                )
                for group in batcher._groups.values():
                    if not group.items or group.release_at is None:
                        continue
                    earliest = min(
                        m.request.deadline_at
                        for item in group.items.values()
                        for m in item.requesters
                    )
                    # a release is either already due (<= now) or in the
                    # future but never past the earliest member deadline
                    assert (
                        group.release_at <= now + 1e-9
                        or group.release_at <= earliest + 1e-9
                    )
                if rng.random() < 0.3:
                    for flushed in batcher.collect_due(now):
                        assert flushed.items
                batcher.drain_releases()


class TestTailRetention:
    def _fill(self, batcher, count, *, deadline=60.0, now=0.0):
        member = _member(0, deadline=deadline)
        keys = [(f"k{i}",) for i in range(count)]
        batcher.enqueue_keys("superhero", _Call(), keys, member,
                             chunk_size=4, now=now)
        return member

    def test_size_flush_keeps_partial_tail(self):
        batcher = _batcher(size=4)
        self._fill(batcher, 6)
        (flushed,) = batcher.collect_due(0.0)
        assert flushed.trigger == SIZE_TRIGGERED
        assert len(flushed.items) == 4  # one full chunk
        # the tail re-opened on a fresh window and scheduled a release
        assert batcher.has_due(2.0)
        (tail,) = batcher.collect_due(2.0)
        assert len(tail.items) == 2
        assert tail.trigger == WINDOW_EXPIRED

    def test_retention_disabled_flushes_everything(self):
        batcher = _batcher(size=4)
        self._fill(batcher, 6)
        (flushed,) = batcher.collect_due(0.0, retain_tails=False)
        assert len(flushed.items) == 6

    def test_window_flush_takes_the_tail_too(self):
        batcher = _batcher(size=8)
        self._fill(batcher, 6)  # below threshold: window release at 2.0
        (flushed,) = batcher.collect_due(2.0)
        assert flushed.trigger == WINDOW_EXPIRED
        assert len(flushed.items) == 6


class TestSettlement:
    def test_tokens_split_fairly_and_conserved(self):
        batcher = _batcher()
        a, b = _member(0), _member(1)
        usage = SimpleNamespace(calls=1, input_tokens=101, output_tokens=11)
        batcher.settle_call([[a, b], [a]], usage, fill=0.5)
        assert a.input_tokens + b.input_tokens == 101
        assert a.output_tokens + b.output_tokens == 11
        assert a.llm_calls + b.llm_calls == 1
        assert a.llm_calls == 1  # heaviest member carries the call
        assert a.shared_tokens + b.shared_tokens == 112
        assert batcher.coalesced_calls == 1
        assert batcher.paid_calls == 1
        assert batcher.batch_occupancy() == pytest.approx(0.5)

    def test_solo_member_charged_in_full(self):
        batcher = _batcher()
        a = _member(0)
        usage = SimpleNamespace(calls=1, input_tokens=50, output_tokens=5)
        batcher.settle_call([[a]], usage)
        assert (a.input_tokens, a.output_tokens, a.llm_calls) == (50, 5, 1)
        assert a.shared_tokens == 0
        assert batcher.coalesced_calls == 0

    def test_free_call_counts_formed_not_paid(self):
        batcher = _batcher()
        batcher.settle_call([[_member(0)]], None)
        assert batcher.formed_calls == 1
        assert batcher.paid_calls == 0

    def test_stats_shape(self):
        batcher = _batcher()
        stats = batcher.stats()
        assert set(stats) == {
            "window", "max_batch", "persist", "items", "coalesced_items",
            "formed_calls", "paid_calls", "coalesced_calls",
            "batch_occupancy", "flushes", "keys_from_store",
            "prompts_from_cache", "fanout_tokens_saved",
        }
        assert set(stats["flushes"]) == {
            WINDOW_EXPIRED, SIZE_TRIGGERED, DEADLINE_FORCED,
        }
