"""Serving-layer properties the ISSUE pins down.

Three invariants that must hold across configurations, not just on one
lucky trace: admission accounting balances, shed rate is monotone in
offered load, and a server with no contention is byte-identical to the
batch runner — serving adds scheduling, never answer drift.
"""

import pytest

from repro.serve.request import QueryRequest, SERVED
from repro.serve.server import QueryServer, ServerConfig
from repro.swan.benchmark import load_benchmark_subset


@pytest.fixture(scope="module")
def serve_swan():
    return load_benchmark_subset(1, ["superhero"])


def _fixed_cost_requests(swan, *, rate, count):
    """``count`` arrivals of one repeated question at ``rate`` req/s.

    After the first (cache-filling) request every service takes exactly
    ``base_overhead`` virtual seconds — an M/D/1-style workload where
    shedding is a pure function of offered load, with no breaker or
    deadline dynamics confounding the curve.
    """
    question = swan.question("superhero_q10")
    return [
        QueryRequest(
            request_id=i,
            tenant="t",
            database="superhero",
            sql=question.blend_sql,
            arrival=i / rate,
            qid=question.qid,
            deadline_seconds=1_000_000.0,
        )
        for i in range(count)
    ]


class TestShedRateMonotone:
    def test_shed_rate_never_decreases_with_offered_load(self, serve_swan):
        # service is pinned at base_overhead=1.0s with max_concurrent=1,
        # so capacity is exactly 1 req/s; sweep from half to 4x that
        rates = (0.5, 1.0, 2.0, 4.0)
        shed_rates = []
        for rate in rates:
            config = ServerConfig(
                model_name="gpt-3.5-turbo", workers=2, max_concurrent=1,
                queue_limit=5, base_overhead=1.0,
                breaker_failure_threshold=1_000_000,
            )
            requests = _fixed_cost_requests(serve_swan, rate=rate, count=60)
            with QueryServer(serve_swan, config) as server:
                report = server.run(requests)
            assert report.accounted()
            assert report.shed == sum(report.shed_by_reason.values())
            shed_rates.append(report.shed / report.offered)
        assert shed_rates == sorted(shed_rates), (
            f"shed rate must be monotone in offered load: "
            f"{dict(zip(rates, shed_rates))}"
        )
        assert shed_rates[0] == 0.0, "below capacity nothing sheds"
        assert shed_rates[-1] > 0.5, "at 4x capacity most offers shed"


class TestZeroLoadByteIdentity:
    def test_unloaded_server_matches_the_batch_runner(self, serve_swan):
        from repro.harness.runner import run_udf

        shots, batch_size, workers = 2, 5, 2
        run = run_udf(
            serve_swan, "gpt-3.5-turbo", shots,
            batch_size=batch_size, workers=workers,
        )
        questions = [q.qid for q in serve_swan.questions]
        requests = [
            QueryRequest(
                request_id=i,
                tenant="t",
                database="superhero",
                sql=serve_swan.question(qid).blend_sql,
                arrival=i * 10_000.0,  # strictly sequential: no queueing
                qid=qid,
                deadline_seconds=9_000.0,
            )
            for i, qid in enumerate(questions)
        ]
        config = ServerConfig(
            model_name="gpt-3.5-turbo", shots=shots, batch_size=batch_size,
            workers=workers,
        )
        with QueryServer(serve_swan, config) as server:
            report = server.run(requests)
        # byte identity: same token stream, same cache behaviour
        assert report.usage == run.usage
        assert (report.cache_hits, report.cache_misses) == (
            run.cache_hits, run.cache_misses
        )
        # and the same per-question answers
        run_rows = {o.qid: (o.actual_rows, o.error) for o in run.outcomes}
        assert len(report.outcomes) == len(run.outcomes)
        for outcome in report.outcomes:
            rows, error = run_rows[outcome.request.qid]
            if not error:
                assert outcome.status == SERVED
                assert outcome.rows == rows
            else:
                assert outcome.status != SERVED
                assert outcome.reason == "error"
