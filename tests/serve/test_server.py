"""Tests for the virtual-clock query server (`repro.serve.server`)."""

import pytest

from repro.obs.ledger import RunLedger
from repro.serve.admission import TenantPolicy
from repro.serve.request import DEGRADED, REJECTED, SERVED, QueryRequest
from repro.serve.server import QueryServer, ServerConfig, VirtualClock
from repro.serve.traffic import TenantSpec, generate_traffic
from repro.swan.benchmark import load_benchmark_subset


@pytest.fixture(scope="module")
def serve_swan():
    return load_benchmark_subset(1, ["superhero"])


def _requests_for(swan, qids, *, spacing, deadline=1000.0, tenant="t"):
    """Sequential requests over named questions, ``spacing`` seconds apart."""
    requests = []
    for index, qid in enumerate(qids):
        question = swan.question(qid)
        requests.append(
            QueryRequest(
                request_id=index,
                tenant=tenant,
                database="superhero",
                sql=question.blend_sql,
                arrival=index * spacing,
                qid=qid,
                deadline_seconds=deadline,
            )
        )
    return requests


class TestVirtualClock:
    def test_never_runs_backwards(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        clock.advance_to(3.0)
        assert clock.now() == 5.0
        clock.sleep(-1.0)
        assert clock.now() == 5.0
        clock.sleep(2.0)
        assert clock.now() == 7.0


class TestServerConfig:
    def test_validates_knobs(self):
        for kwargs in (
            {"workers": 0},
            {"max_concurrent": 0},
            {"base_overhead": -1.0},
            {"fault_rate": 1.5},
        ):
            with pytest.raises(ValueError):
                ServerConfig(**kwargs)


class TestUnloadedServing:
    def test_sequential_requests_all_serve(self, serve_swan):
        qids = ["superhero_q10", "superhero_q12", "superhero_q16"]
        requests = _requests_for(serve_swan, qids, spacing=500.0)
        with QueryServer(serve_swan, ServerConfig(
            model_name="gpt-3.5-turbo", workers=2,
        )) as server:
            report = server.run(requests)
        assert report.accounted()
        assert report.served == len(requests)
        assert report.rejected == report.degraded == 0
        for outcome in report.outcomes:
            assert outcome.status == SERVED
            assert outcome.queue_wait == 0.0
            assert outcome.service_seconds > 0.0
            assert outcome.llm_calls > 0

    def test_repeat_question_is_served_from_cache(self, serve_swan):
        requests = _requests_for(
            serve_swan, ["superhero_q10", "superhero_q10"], spacing=500.0
        )
        with QueryServer(serve_swan, ServerConfig(
            model_name="gpt-3.5-turbo", workers=2,
        )) as server:
            report = server.run(requests)
        first, second = report.outcomes
        assert second.llm_calls == 0
        assert second.service_seconds < first.service_seconds
        assert report.cache_hits > 0

    def test_run_is_deterministic(self, serve_swan):
        spec = TenantSpec(
            name="t", rate=0.3, databases=("superhero",), hqdl_share=0.2
        )
        requests = generate_traffic(serve_swan, [spec], horizon=40.0, seed=3)
        config = ServerConfig(model_name="gpt-3.5-turbo", workers=2)
        records = []
        for _ in range(2):
            with QueryServer(serve_swan, config) as server:
                records.append(server.run(requests).as_record())
        assert records[0] == records[1]


class TestOverload:
    @pytest.fixture(scope="class")
    def overload_report(self, serve_swan):
        spec = TenantSpec(
            name="flood", rate=2.0, deadline_seconds=20.0,
            databases=("superhero",),
        )
        requests = generate_traffic(serve_swan, [spec], horizon=60.0, seed=0)
        config = ServerConfig(
            model_name="gpt-3.5-turbo", workers=2, max_concurrent=2,
            queue_limit=4,
        )
        with QueryServer(serve_swan, config) as server:
            return server.run(requests)

    def test_trichotomy_holds_under_saturation(self, overload_report):
        report = overload_report
        assert report.offered >= 100  # well past 2x what the server sustains
        assert report.accounted()
        assert report.rejected > 0, "sustained overload must shed load"
        assert (
            report.served + report.degraded + report.rejected
            == report.offered
        )
        assert report.shed == sum(report.shed_by_reason.values())

    def test_rejections_carry_typed_reasons(self, overload_report):
        reasons = overload_report.rejected_by_reason()
        assert set(reasons) <= {
            "queue_full", "tenant_quota", "token_budget", "deadline_expired"
        }
        assert reasons.get("queue_full", 0) > 0
        for outcome in overload_report.outcomes:
            if outcome.status == REJECTED and outcome.reason == "queue_full":
                assert outcome.retry_after is not None
                assert outcome.retry_after > 0

    def test_deadlines_are_never_exceeded(self, overload_report):
        for outcome in overload_report.outcomes:
            assert (
                outcome.finish_time
                <= outcome.request.deadline_at + 1e-6
            ), f"request {outcome.request.request_id} finished late"
            if outcome.answered:
                assert outcome.latency <= (
                    outcome.request.deadline_seconds + 1e-6
                )

    def test_queue_expiry_rejects_at_the_deadline_instant(
        self, overload_report
    ):
        expired = [
            o for o in overload_report.outcomes
            if o.status == REJECTED and o.reason == "deadline_expired"
        ]
        for outcome in expired:
            assert outcome.finish_time == outcome.request.deadline_at

    def test_max_queue_depth_respects_the_limit(self, overload_report):
        assert 0 < overload_report.max_queue_depth <= 4


class TestGracefulDegradation:
    def test_breaker_sheds_quality_before_availability(self, serve_swan):
        # distinct uncached questions under an impossible deadline: each
        # miss is a breaker failure; after the third the breaker opens
        # and later requests get the cheap degraded answer instead
        qids = ["superhero_q10", "superhero_q12", "superhero_q16",
                "superhero_q01", "superhero_q02"]
        requests = _requests_for(
            serve_swan, qids, spacing=5.0, deadline=0.3
        )
        config = ServerConfig(
            model_name="gpt-3.5-turbo", workers=2,
            breaker_failure_threshold=3, breaker_cooldown=30.0,
        )
        with QueryServer(serve_swan, config) as server:
            report = server.run(requests)
        assert report.accounted()
        assert report.breaker_trips >= 1
        reasons = report.degraded_by_reason()
        assert reasons.get("deadline", 0) >= 3
        assert reasons.get("breaker_open", 0) >= 1
        # availability held: every request was answered, on time
        assert report.answered == len(requests)
        for outcome in report.outcomes:
            assert outcome.finish_time <= outcome.request.deadline_at + 1e-6

    def test_breaker_open_answers_skip_llm_work(self, serve_swan):
        qids = ["superhero_q10", "superhero_q12", "superhero_q16",
                "superhero_q01"]
        requests = _requests_for(
            serve_swan, qids, spacing=5.0, deadline=0.3
        )
        with QueryServer(serve_swan, ServerConfig(
            model_name="gpt-3.5-turbo", workers=2,
            breaker_failure_threshold=3,
        )) as server:
            report = server.run(requests)
        opened = [
            o for o in report.outcomes if o.reason == "breaker_open"
        ]
        assert opened
        for outcome in opened:
            assert outcome.llm_calls == 0
            assert outcome.service_seconds <= 0.3


class TestTenantPolicies:
    def test_token_budget_rejects_after_spend(self, serve_swan):
        requests = _requests_for(
            serve_swan, ["superhero_q10", "superhero_q12"], spacing=500.0
        )
        policies = {"t": TenantPolicy(name="t", token_budget=10)}
        with QueryServer(
            serve_swan,
            ServerConfig(model_name="gpt-3.5-turbo", workers=2),
            policies=policies,
        ) as server:
            report = server.run(requests)
        first, second = report.outcomes
        assert first.status == SERVED
        assert first.input_tokens + first.output_tokens > 10
        assert second.status == REJECTED
        assert second.reason == "token_budget"
        assert second.retry_after is None

    def test_concurrency_cap_queues_rather_than_sheds(self, serve_swan):
        # both requests arrive together; the cap serializes them, and
        # the second waits in queue instead of being rejected
        question = serve_swan.question("superhero_q10")
        requests = [
            QueryRequest(
                request_id=i, tenant="t", database="superhero",
                sql=question.blend_sql, arrival=0.0, qid=question.qid,
                deadline_seconds=1000.0,
            )
            for i in range(2)
        ]
        policies = {"t": TenantPolicy(name="t", max_concurrent=1)}
        with QueryServer(
            serve_swan,
            ServerConfig(model_name="gpt-3.5-turbo", workers=2),
            policies=policies,
        ) as server:
            report = server.run(requests)
        assert report.rejected == 0
        waits = sorted(o.queue_wait for o in report.outcomes)
        assert waits[0] == 0.0
        assert waits[1] > 0.0


class TestReporting:
    def test_per_tenant_stats_sum_to_offered(self, serve_swan):
        specs = [
            TenantSpec(name="a", rate=0.3, databases=("superhero",)),
            TenantSpec(name="b", rate=0.3, databases=("superhero",)),
        ]
        requests = generate_traffic(serve_swan, specs, horizon=30.0, seed=1)
        with QueryServer(serve_swan, ServerConfig(
            model_name="gpt-3.5-turbo", workers=2,
        )) as server:
            report = server.run(requests)
        tenants = report.per_tenant()
        assert sum(t["offered"] for t in tenants.values()) == report.offered
        assert 0.0 < report.fairness() <= 1.0
        record = report.as_record()
        assert record["accounting_ok"] is True
        assert record["offered"] == report.offered

    def test_run_appends_a_ledger_row(self, serve_swan, tmp_path):
        requests = _requests_for(
            serve_swan, ["superhero_q10"], spacing=500.0
        )
        with RunLedger(tmp_path / "ledger.sqlite") as ledger:
            with QueryServer(
                serve_swan,
                ServerConfig(model_name="gpt-3.5-turbo", workers=2),
                ledger=ledger,
            ) as server:
                report = server.run(requests)
            row = ledger.latest(label="serve")
        assert row is not None
        assert row["pipeline"] == "serve"
        assert row["payload"]["serve"]["offered"] == report.offered
        assert row["llm_calls"] == report.usage.calls

    def test_close_is_idempotent(self, serve_swan):
        server = QueryServer(
            serve_swan, ServerConfig(model_name="gpt-3.5-turbo")
        )
        server.run(_requests_for(serve_swan, ["superhero_q10"], spacing=1.0))
        server.close()
        server.close()
