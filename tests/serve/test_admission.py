"""Tests for admission control (`repro.serve.admission`)."""

import pytest

from repro.serve.admission import AdmissionController, TenantPolicy
from repro.serve.request import QueryRequest


def _request(request_id=0, tenant="t", arrival=0.0, **kwargs):
    return QueryRequest(
        request_id=request_id,
        tenant=tenant,
        database="superhero",
        sql="SELECT 1",
        arrival=arrival,
        **kwargs,
    )


class TestTenantPolicy:
    def test_rejects_nonpositive_limits(self):
        for field in ("max_queued", "max_concurrent", "token_budget"):
            with pytest.raises(ValueError, match=field):
                TenantPolicy(name="t", **{field: 0})

    def test_none_means_unlimited(self):
        policy = TenantPolicy(name="t")
        assert policy.max_queued is None
        assert policy.token_budget is None


class TestAdmission:
    def test_rejects_nonpositive_queue_limit(self):
        with pytest.raises(ValueError, match="queue_limit"):
            AdmissionController(0)

    def test_every_offer_is_admitted_or_shed_never_both(self):
        ctrl = AdmissionController(2)
        results = [
            ctrl.admit(_request(i, tenant=f"t{i}")) for i in range(5)
        ]
        admitted = sum(1 for r in results if r is None)
        shed = sum(1 for r in results if r is not None)
        assert (ctrl.offered, ctrl.admitted, ctrl.shed) == (5, admitted, shed)
        assert ctrl.accounted()

    def test_queue_full_sheds_with_retry_after(self):
        ctrl = AdmissionController(1)
        assert ctrl.admit(_request(0)) is None
        rejection = ctrl.admit(_request(1), retry_after=2.5)
        assert rejection is not None
        assert rejection.reason == "queue_full"
        assert rejection.retry_after == 2.5
        assert ctrl.shed_by_reason == {"queue_full": 1}

    def test_tenant_quota_sheds_only_the_noisy_tenant(self):
        ctrl = AdmissionController(
            10, {"noisy": TenantPolicy(name="noisy", max_queued=1)}
        )
        assert ctrl.admit(_request(0, tenant="noisy")) is None
        rejection = ctrl.admit(_request(1, tenant="noisy"))
        assert rejection is not None and rejection.reason == "tenant_quota"
        # the quiet tenant still admits while the noisy one sheds
        assert ctrl.admit(_request(2, tenant="quiet")) is None
        assert ctrl.accounted()

    def test_queue_full_outranks_tenant_quota(self):
        ctrl = AdmissionController(
            1, {"t": TenantPolicy(name="t", max_queued=1)}
        )
        assert ctrl.admit(_request(0, tenant="other")) is None
        rejection = ctrl.admit(_request(1, tenant="t"))
        assert rejection is not None and rejection.reason == "queue_full"

    def test_token_budget_sheds_after_spend_without_retry_hint(self):
        ctrl = AdmissionController(
            10, {"t": TenantPolicy(name="t", token_budget=100)}
        )
        first = _request(0)
        assert ctrl.admit(first) is None
        ctrl.on_dispatched(first)
        ctrl.on_finished(first, tokens=150)
        rejection = ctrl.admit(_request(1), retry_after=5.0)
        assert rejection is not None and rejection.reason == "token_budget"
        # a spent budget does not refill, so no retry-after is promised
        assert rejection.retry_after is None
        assert ctrl.tokens_spent["t"] == 150

    def test_dispatch_respects_tenant_concurrency_cap(self):
        ctrl = AdmissionController(
            10, {"t": TenantPolicy(name="t", max_concurrent=1)}
        )
        first, second = _request(0), _request(1)
        assert ctrl.admit(first) is None
        assert ctrl.admit(second) is None
        assert ctrl.can_dispatch(first)
        ctrl.on_dispatched(first)
        assert not ctrl.can_dispatch(second)
        ctrl.on_finished(first)
        assert ctrl.can_dispatch(second)

    def test_queue_expiry_frees_the_tenant_slot(self):
        ctrl = AdmissionController(
            10, {"t": TenantPolicy(name="t", max_queued=1)}
        )
        first = _request(0)
        assert ctrl.admit(first) is None
        assert ctrl.admit(_request(1)) is not None
        ctrl.on_expired_in_queue(first)
        assert ctrl.admit(_request(2)) is None
        assert ctrl.accounted()
