"""Tests for aged-priority scheduling (`repro.serve.scheduler`)."""

import pytest

from repro.serve.request import QueryRequest
from repro.serve.scheduler import AgingPriorityQueue


def _request(request_id, *, arrival=0.0, priority=1, deadline=60.0, tenant="t"):
    return QueryRequest(
        request_id=request_id,
        tenant=tenant,
        database="superhero",
        sql="SELECT 1",
        arrival=arrival,
        priority=priority,
        deadline_seconds=deadline,
    )


class TestOrdering:
    def test_lower_priority_class_pops_first(self):
        queue = AgingPriorityQueue()
        queue.push(_request(0, priority=1))
        queue.push(_request(1, priority=0))
        assert queue.pop(0.0).request_id == 1
        assert queue.pop(0.0).request_id == 0

    def test_aging_promotes_a_waiting_batch_request(self):
        queue = AgingPriorityQueue(aging_interval=10.0)
        old_batch = _request(0, arrival=0.0, priority=1)
        fresh_interactive = _request(1, arrival=15.0, priority=0)
        queue.push(old_batch)
        queue.push(fresh_interactive)
        # at t=15 the batch request has aged 1.5 classes: -0.5 < 0.0
        assert queue.effective_priority(old_batch, 15.0) == pytest.approx(-0.5)
        assert queue.pop(15.0).request_id == 0

    def test_ties_break_by_arrival_then_request_id(self):
        queue = AgingPriorityQueue()
        queue.push(_request(5, arrival=1.0))
        queue.push(_request(3, arrival=1.0))
        queue.push(_request(9, arrival=0.5))
        assert [queue.pop(1.0).request_id for _ in range(3)] == [9, 3, 5]

    def test_pop_on_empty_returns_none(self):
        assert AgingPriorityQueue().pop(0.0) is None

    def test_rejects_nonpositive_aging_interval(self):
        with pytest.raises(ValueError, match="aging_interval"):
            AgingPriorityQueue(aging_interval=0.0)


class TestExpiry:
    def test_pop_expired_removes_only_overdue_requests(self):
        queue = AgingPriorityQueue()
        queue.push(_request(0, arrival=0.0, deadline=5.0))
        queue.push(_request(1, arrival=0.0, deadline=50.0))
        expired = queue.pop_expired(10.0)
        assert [r.request_id for r in expired] == [0]
        assert len(queue) == 1
        assert queue.pop(10.0).request_id == 1

    def test_expired_order_follows_deadline_instants(self):
        queue = AgingPriorityQueue()
        queue.push(_request(0, arrival=2.0, deadline=5.0))  # due at 7
        queue.push(_request(1, arrival=0.0, deadline=3.0))  # due at 3
        assert [r.request_id for r in queue.pop_expired(10.0)] == [1, 0]


class TestEligibility:
    def test_ineligible_requests_stay_queued_and_keep_aging(self):
        queue = AgingPriorityQueue()
        capped = _request(0, priority=0, tenant="capped")
        other = _request(1, priority=1, tenant="other")
        queue.push(capped)
        queue.push(other)
        popped = queue.pop(0.0, eligible=lambda r: r.tenant != "capped")
        assert popped.request_id == 1
        assert len(queue) == 1  # the capped request was not dequeued
        assert queue.pop(0.0).request_id == 0

    def test_all_ineligible_returns_none_without_dequeuing(self):
        queue = AgingPriorityQueue()
        queue.push(_request(0))
        assert queue.pop(0.0, eligible=lambda r: False) is None
        assert len(queue) == 1

    def test_depth_for_counts_per_tenant(self):
        queue = AgingPriorityQueue()
        queue.push(_request(0, tenant="a"))
        queue.push(_request(1, tenant="a"))
        queue.push(_request(2, tenant="b"))
        assert queue.depth_for("a") == 2
        assert queue.depth_for("b") == 1
        assert queue.depth_for("c") == 0
