"""Tests for deterministic synthetic traffic (`repro.serve.traffic`)."""

import pytest

from repro.errors import ReproError
from repro.serve.traffic import TenantSpec, generate_traffic


def _spec(**kwargs):
    defaults = dict(name="t", rate=0.5, databases=("superhero",))
    defaults.update(kwargs)
    return TenantSpec(**defaults)


class TestTenantSpec:
    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError, match="rate"):
            _spec(rate=-1.0)

    def test_rejects_out_of_range_hqdl_share(self):
        with pytest.raises(ValueError, match="hqdl_share"):
            _spec(hqdl_share=1.5)

    def test_rejects_nonpositive_burst_period(self):
        with pytest.raises(ValueError, match="burst_every"):
            _spec(burst_every=0.0)

    def test_scaled_multiplies_rate_and_burst_size(self):
        spec = _spec(rate=1.0, burst_every=10.0, burst_size=4)
        doubled = spec.scaled(2.0)
        assert doubled.rate == 2.0
        assert doubled.burst_size == 8
        assert doubled.name == spec.name
        assert doubled.deadline_seconds == spec.deadline_seconds

    def test_policy_mirrors_admission_fields(self):
        spec = _spec(max_queued=3, max_concurrent=2, token_budget=100)
        policy = spec.policy()
        assert (policy.max_queued, policy.max_concurrent) == (3, 2)
        assert policy.token_budget == 100


class TestGenerateTraffic:
    def test_identical_across_calls(self, swan):
        specs = [_spec(rate=0.4, hqdl_share=0.3)]
        first = generate_traffic(swan, specs, horizon=60.0, seed=7)
        second = generate_traffic(swan, specs, horizon=60.0, seed=7)
        assert first == second
        assert first, "a 60s horizon at 0.4 rps must produce arrivals"

    def test_seed_changes_the_traffic(self, swan):
        specs = [_spec(rate=0.4)]
        assert generate_traffic(
            swan, specs, horizon=60.0, seed=0
        ) != generate_traffic(swan, specs, horizon=60.0, seed=1)

    def test_arrivals_are_ordered_with_sequential_ids(self, swan):
        requests = generate_traffic(
            swan,
            [_spec(name="a", rate=0.5), _spec(name="b", rate=0.5)],
            horizon=60.0,
        )
        assert [r.request_id for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= a < 60.0 for a in arrivals)

    def test_bursts_land_on_the_beat(self, swan):
        requests = generate_traffic(
            swan,
            [_spec(rate=0.0, burst_every=20.0, burst_size=3)],
            horizon=61.0,
        )
        # beats at 20, 40, 60 — three simultaneous arrivals each
        assert [r.arrival for r in requests] == [20.0] * 3 + [40.0] * 3 + [
            60.0
        ] * 3

    def test_hqdl_share_routes_pipelines(self, swan):
        all_hqdl = generate_traffic(
            swan, [_spec(rate=0.5, hqdl_share=1.0)], horizon=60.0
        )
        assert {r.pipeline for r in all_hqdl} == {"hqdl"}
        all_udf = generate_traffic(
            swan, [_spec(rate=0.5, hqdl_share=0.0)], horizon=60.0
        )
        assert {r.pipeline for r in all_udf} == {"udf"}

    def test_requests_carry_tenant_shape(self, swan):
        requests = generate_traffic(
            swan,
            [_spec(priority=0, deadline_seconds=12.5)],
            horizon=60.0,
        )
        for request in requests:
            assert request.tenant == "t"
            assert request.priority == 0
            assert request.deadline_seconds == 12.5
            assert request.database == "superhero"
            assert request.qid.startswith("superhero_")

    def test_rejects_unknown_database(self, swan):
        with pytest.raises(ReproError, match="unknown database"):
            generate_traffic(
                swan, [_spec(databases=("atlantis",))], horizon=60.0
            )

    def test_rejects_nonpositive_horizon(self, swan):
        with pytest.raises(ReproError, match="horizon"):
            generate_traffic(swan, [_spec()], horizon=0.0)

    def test_rejects_empty_tenant_list(self, swan):
        with pytest.raises(ReproError, match="TenantSpec"):
            generate_traffic(swan, [], horizon=60.0)
