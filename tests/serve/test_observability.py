"""Serving observability end-to-end (PR 8 acceptance criteria).

Telemetry must be provably *result-invisible*: the instrumented server
produces byte-identical outcomes to the NULL-telemetry one.  Under
sustained overload the fast burn-rate alert must fire and the flight
recorder must capture an incident holding the triggering window and the
shed/breaker evidence.  And the windowed per-tenant accounting must sum
back to the run report's totals — the dashboard never disagrees with
the ledger.
"""

import json

import pytest

from repro.harness.benchserve import (
    build_observability,
    default_config,
    default_tenants,
    measure_capacity,
    run_level,
    run_slo_loadtest,
)
from repro.obs.slo import FAST
from repro.swan.benchmark import load_benchmark_subset

HORIZON = 60.0


@pytest.fixture(scope="module")
def serve_swan():
    return load_benchmark_subset(1, ["superhero"])


@pytest.fixture(scope="module")
def capacity(serve_swan):
    return measure_capacity(
        serve_swan, default_config(), default_tenants(("superhero",)),
        seed=0, horizon=HORIZON,
    )


#: deep overload — one database carries little absolute traffic, so it
#: takes 8x measured capacity before admission starts refusing work
OVERLOAD = 8.0


@pytest.fixture(scope="module")
def overload_run(serve_swan, capacity):
    """One instrumented overload run shared by the assertions below."""
    telemetry, tracker = build_observability()
    report, record = run_level(
        serve_swan, default_config(), default_tenants(("superhero",)),
        OVERLOAD, capacity, seed=0, horizon=HORIZON,
        telemetry=telemetry, slo_tracker=tracker,
    )
    return report, record, telemetry, tracker


class TestResultInvisibility:
    def test_instrumented_outcomes_byte_identical_to_null(
        self, serve_swan, capacity
    ):
        tenants = default_tenants(("superhero",))
        _, bare = run_level(
            serve_swan, default_config(), tenants, OVERLOAD, capacity,
            seed=0, horizon=HORIZON,
        )
        telemetry, tracker = build_observability()
        _, instrumented = run_level(
            serve_swan, default_config(), tenants, OVERLOAD, capacity,
            seed=0, horizon=HORIZON,
            telemetry=telemetry, slo_tracker=tracker,
        )
        assert json.dumps(bare, sort_keys=True) == json.dumps(
            instrumented, sort_keys=True
        )


class TestOverloadAlerting:
    def test_fast_burn_fires_under_sustained_overload(self, overload_run):
        _, _, _, tracker = overload_run
        assert any(alert.severity == FAST for alert in tracker.alerts)

    def test_incident_captured_with_window_and_evidence(self, overload_run):
        _, _, telemetry, _ = overload_run
        incidents = telemetry.flight.incidents
        assert len(incidents) >= 1
        for incident in incidents:
            # every incident names its triggering window with stats
            assert incident["alert"]["window"] == incident["window"]["index"]
            assert incident["window"]["offered"] >= 0
        # the availability alert's incident carries the shed evidence
        availability = next(
            i for i in incidents if i["alert"]["slo"] == "availability"
        )
        kinds = {event["kind"] for event in availability["events"]}
        assert "shed" in kinds

    def test_shed_events_recorded_when_admission_refuses(self, overload_run):
        report, _, telemetry, _ = overload_run
        if report.shed == 0:
            pytest.skip("this trace shed nothing")
        shed_events = [
            e for e in telemetry.flight.events() if e["kind"] == "shed"
        ]
        # the bounded ring keeps the tail; every retained shed is real
        assert shed_events
        assert all("tenant" in e and "reason" in e for e in shed_events)


class TestWindowedAccounting:
    def test_window_sums_match_report_totals(self, overload_run):
        from repro.harness.benchserve import window_table

        report, record, telemetry, _ = overload_run
        rows = window_table(telemetry.timeseries)
        for label in ("offered", "served", "degraded", "rejected"):
            assert sum(row[label] for row in rows) == record[label]
        for tenant, stats in record["per_tenant"].items():
            for label in ("offered", "served", "degraded", "rejected"):
                windowed = sum(
                    row["per_tenant"][tenant][label] for row in rows
                )
                assert windowed == stats[label]

    def test_token_accounting_matches_usage(self, overload_run):
        report, record, telemetry, _ = overload_run
        total = sum(
            telemetry.timeseries.total("serve.tokens", tenant=t)
            for t in telemetry.timeseries.label_values(
                "serve.tokens", "tenant"
            )
        )
        assert total == record["input_tokens"] + record["output_tokens"]


class TestByteReproducibility:
    def test_slo_payload_and_incidents_byte_identical(self, tmp_path):
        def sweep(tag):
            sink = tmp_path / f"incidents_{tag}.jsonl"
            serve, slo = run_slo_loadtest(
                horizon=40.0, multipliers=(0.5, 4.0),
                databases=("superhero",), incident_sink=sink,
            )
            sink_bytes = (
                sink.read_bytes() if sink.exists() else b""
            )
            return (
                json.dumps(serve, sort_keys=True),
                json.dumps(slo, sort_keys=True),
                sink_bytes,
            )

        first = sweep("a")
        second = sweep("b")
        assert first == second
        slo = json.loads(first[1])
        # the alert timeline itself is part of the stable payload
        assert any(level["alerts"] for level in slo["levels"])
