"""Tests for expansion-table materialization."""

import pytest

from repro.core.materialize import expansion_table_schema, materialize_expansion
from repro.sqlengine.database import Database


@pytest.fixture()
def db():
    database = Database.in_memory()
    yield database
    database.close()


@pytest.fixture(scope="module")
def expansion(football_world):
    return football_world.expansion("player_info")


class TestSchema:
    def test_key_columns_text(self, expansion):
        schema = expansion_table_schema(expansion)
        assert schema.column("player_name").type == "TEXT"

    def test_numeric_columns_get_numeric_affinity(self, expansion):
        schema = expansion_table_schema(expansion)
        assert schema.column("height_cm").type == "NUMERIC"

    def test_primary_key_is_expansion_key(self, expansion):
        schema = expansion_table_schema(expansion)
        assert schema.primary_key == ("player_name",)


class TestMaterialize:
    def test_inserts_rows(self, db, expansion):
        rows = {("A",): ["180", "75", "1990"], ("B",): ["190", "85", "1985"]}
        inserted = materialize_expansion(db, expansion, rows)
        assert inserted == 2
        assert db.row_count("player_info") == 2

    def test_skips_malformed_rows(self, db, expansion):
        rows = {("A",): ["180", "75", "1990"], ("B",): None}
        assert materialize_expansion(db, expansion, rows) == 1

    def test_numeric_strings_coerce(self, db, expansion):
        materialize_expansion(db, expansion, {("A",): ["183", "75", "1990"]})
        value = db.query_scalar(
            "SELECT height_cm FROM player_info WHERE player_name = 'A'"
        )
        assert value == 183  # NUMERIC affinity converted the string
        assert db.query_scalar(
            "SELECT COUNT(*) FROM player_info WHERE height_cm > 180"
        ) == 1

    def test_recreates_table(self, db, expansion):
        materialize_expansion(db, expansion, {("A",): ["1", "2", "3"]})
        materialize_expansion(db, expansion, {("B",): ["4", "5", "6"]})
        names = db.query_column("SELECT player_name FROM player_info")
        assert names == ["B"]

    def test_accepts_iterable_of_full_rows(self, db, expansion):
        rows = [("A", "180", "75", "1990")]
        assert materialize_expansion(db, expansion, rows) == 1
