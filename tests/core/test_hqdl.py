"""Tests for the HQDL pipeline."""

import pytest

from repro.core.hqdl import HQDL
from repro.errors import ReproError
from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.sqlengine.results import results_match
from repro.swan.build import build_original_database

from tests.conftest import make_model


@pytest.fixture(scope="module")
def perfect_pipeline(superhero_world):
    return HQDL(superhero_world, make_model(superhero_world), shots=0)


@pytest.fixture(scope="module")
def perfect_generation(perfect_pipeline):
    return perfect_pipeline.generate_all()


class TestGeneration:
    def test_one_call_per_key(self, superhero_world, perfect_generation):
        generation = perfect_generation.tables["superhero_info"]
        assert generation.calls == len(superhero_world.truth["superhero_info"])

    def test_perfect_model_has_no_malformed_rows(self, perfect_generation):
        assert perfect_generation.total_malformed() == 0

    def test_generated_values_match_truth_under_perfect_model(
        self, superhero_world, perfect_generation
    ):
        oracle = KnowledgeOracle(superhero_world)
        expansion = superhero_world.expansion("superhero_info")
        generation = perfect_generation.tables["superhero_info"]
        for key, values in list(generation.rows.items())[:20]:
            for column, value in zip(expansion.columns, values):
                truth = superhero_world.truth_value(
                    "superhero_info", key, column.name
                )
                assert value == oracle.format_value(truth, column)

    def test_imperfect_model_drops_some_rows(self, superhero_world):
        pipeline = HQDL(
            superhero_world, make_model(superhero_world, "gpt-3.5-turbo"), shots=0
        )
        generation = pipeline.generate_all()
        assert generation.total_malformed() > 0
        table = generation.tables["superhero_info"]
        assert any(v is None for v in table.rows.values())

    def test_multi_expansion_world(self, formula_world):
        pipeline = HQDL(formula_world, make_model(formula_world), shots=0)
        generation = pipeline.generate_all()
        assert set(generation.tables) == {
            "driver_info", "circuit_info", "constructor_info",
        }


class TestMaterializeAndAnswer:
    def test_expanded_database_has_expansion_tables(
        self, perfect_pipeline, perfect_generation
    ):
        with perfect_pipeline.build_expanded_database(perfect_generation) as db:
            assert db.has_table("superhero_info")
            assert db.row_count("superhero_info") > 100

    def test_answer_matches_gold_under_perfect_model(
        self, swan, superhero_world, perfect_pipeline, perfect_generation
    ):
        with perfect_pipeline.build_expanded_database(perfect_generation) as db, \
                build_original_database(superhero_world) as orig:
            for question in swan.questions_for("superhero")[:10]:
                expected = orig.query(question.gold_sql)
                actual = perfect_pipeline.answer(db, question)
                assert results_match(expected, actual, ordered=question.ordered), (
                    question.qid
                )

    def test_answer_rejects_foreign_question(
        self, swan, perfect_pipeline, perfect_generation
    ):
        with perfect_pipeline.build_expanded_database(perfect_generation) as db:
            question = swan.question("formula_1_q01")
            with pytest.raises(ReproError):
                perfect_pipeline.answer(db, question)

    def test_materialize_requires_all_tables(self, formula_world, perfect_pipeline):
        pipeline = HQDL(formula_world, make_model(formula_world), shots=0)
        partial = pipeline.generate_all()
        del partial.tables["circuit_info"]
        from repro.swan.build import build_curated_database

        with build_curated_database(formula_world) as db:
            with pytest.raises(ReproError):
                pipeline.materialize(db, partial)


class TestUsageAccounting:
    def test_generation_meters_tokens(self, superhero_world):
        model = make_model(superhero_world)
        pipeline = HQDL(superhero_world, model, shots=0)
        pipeline.generate_table("superhero_info")
        assert model.meter.total.calls == len(
            superhero_world.truth["superhero_info"]
        )
        assert model.meter.total.input_tokens > 10_000

    def test_few_shot_costs_more_input(self, superhero_world):
        zero_model = make_model(superhero_world)
        HQDL(superhero_world, zero_model, shots=0).generate_table("superhero_info")
        five_model = make_model(superhero_world)
        HQDL(superhero_world, five_model, shots=5).generate_table("superhero_info")
        assert (
            five_model.meter.total.input_tokens
            > zero_model.meter.total.input_tokens
        )
