"""Tests for HQDL prompt construction."""

import pytest

from repro.core.prompts import RowPromptBuilder
from repro.llm.chat import (
    ANSWER_MARKER,
    COLUMNS_MARKER,
    EXAMPLE_ENTRY_MARKER,
    TARGET_ENTRY_MARKER,
    VALUES_HINT_MARKER,
)


@pytest.fixture(scope="module")
def builder_factory(superhero_world):
    def make(shots=0):
        return RowPromptBuilder(
            superhero_world,
            superhero_world.expansion("superhero_info"),
            shots=shots,
        )

    return make


class TestZeroShot:
    def test_structure(self, builder_factory):
        prompt = builder_factory().build(("Batman", "Bruce Wayne"))
        assert "fill in the missing values" in prompt
        assert "no explanation" in prompt
        assert COLUMNS_MARKER in prompt
        assert TARGET_ENTRY_MARKER in prompt
        assert prompt.rstrip().endswith(ANSWER_MARKER)
        assert EXAMPLE_ENTRY_MARKER not in prompt

    def test_names_expansion_table(self, builder_factory):
        prompt = builder_factory().build(("Batman", "Bruce Wayne"))
        assert "`superhero_info` table" in prompt
        assert "`superhero` database" in prompt

    def test_lists_all_columns(self, builder_factory, superhero_world):
        prompt = builder_factory().build(("Batman", "Bruce Wayne"))
        for name in superhero_world.expansion("superhero_info").all_column_names():
            assert f"`{name}`" in prompt

    def test_value_lists_included(self, builder_factory):
        prompt = builder_factory().build(("Batman", "Bruce Wayne"))
        assert VALUES_HINT_MARKER in prompt
        assert "'DC Comics'" in prompt

    def test_target_entry_has_placeholders(self, builder_factory):
        prompt = builder_factory().build(("Batman", "Bruce Wayne"))
        target_line = [
            line for line in prompt.splitlines() if line.startswith(TARGET_ENTRY_MARKER)
        ][0]
        assert target_line.count("?") == 8  # the generated columns

    def test_field_count_stated(self, builder_factory):
        prompt = builder_factory().build(("Batman", "Bruce Wayne"))
        assert "10 fields" in prompt


class TestFewShot:
    def test_demo_count_matches_shots(self, builder_factory):
        for shots in (1, 3, 5):
            prompt = builder_factory(shots).build(("Batman", "Bruce Wayne"))
            assert prompt.count(EXAMPLE_ENTRY_MARKER) == shots

    def test_demos_static_across_targets(self, builder_factory):
        builder = builder_factory(3)
        first = builder.build(("Batman", "Bruce Wayne"))
        second = builder.build(("Thor", "Thor Odinson"))
        demo_lines = lambda p: [
            line for line in p.splitlines() if line.startswith(EXAMPLE_ENTRY_MARKER)
        ]
        assert demo_lines(first) == demo_lines(second)

    def test_demo_answers_are_ground_truth(self, builder_factory, superhero_world):
        builder = builder_factory(1)
        prompt = builder.build(("Batman", "Bruce Wayne"))
        lines = prompt.splitlines()
        demo_index = next(
            i for i, line in enumerate(lines) if line.startswith(EXAMPLE_ENTRY_MARKER)
        )
        answer_line = lines[demo_index + 1]
        assert answer_line.startswith(ANSWER_MARKER)
        assert "?" not in answer_line

    def test_negative_shots_rejected(self, superhero_world):
        with pytest.raises(ValueError):
            RowPromptBuilder(
                superhero_world,
                superhero_world.expansion("superhero_info"),
                shots=-1,
            )

    def test_more_shots_longer_prompt(self, builder_factory):
        key = ("Batman", "Bruce Wayne")
        lengths = [len(builder_factory(s).build(key)) for s in (0, 1, 3, 5)]
        assert lengths == sorted(lengths)
        assert lengths[0] < lengths[-1]
