"""Tests for completion-text extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extraction import extract_row, parse_fields
from repro.errors import ExtractionError
from repro.llm.chat import quote_field


class TestParseFields:
    def test_simple(self):
        assert parse_fields("'a','b','c'") == ["a", "b", "c"]

    def test_commas_inside_quotes(self):
        assert parse_fields("'a, b','c'") == ["a, b", "c"]

    def test_escaped_quotes(self):
        assert parse_fields("'it''s','x'") == ["it's", "x"]


class TestExtractRow:
    def test_happy_path(self):
        assert extract_row("'a','b'", 2) == ["a", "b"]

    def test_skips_preamble_line(self):
        completion = "Here is the completed row:\n'a','b'"
        assert extract_row(completion, 2) == ["a", "b"]

    def test_empty_completion_raises(self):
        with pytest.raises(ExtractionError):
            extract_row("", 2)
        with pytest.raises(ExtractionError):
            extract_row("\n  \n", 2)

    def test_too_few_fields(self):
        with pytest.raises(ExtractionError, match="expected 3 fields"):
            extract_row("'a','b'", 3)

    def test_too_many_fields(self):
        with pytest.raises(ExtractionError):
            extract_row("'a','b','c'", 2)

    def test_empty_field_rejected(self):
        with pytest.raises(ExtractionError, match="empty"):
            extract_row("'a',''", 2)

    def test_takes_last_data_line(self):
        completion = "'stale','row'\n'fresh','row'"
        assert extract_row(completion, 2) == ["fresh", "row"]


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.text(
            alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
            min_size=1,
            max_size=12,
        ).filter(lambda s: s.strip() == s and s.strip("?") != ""),
        min_size=1,
        max_size=8,
    )
)
def test_quote_parse_round_trip_property(fields):
    """Any quoted row of non-empty fields parses back to the same fields."""
    line = ",".join(quote_field(f) for f in fields)
    assert extract_row(line, len(fields)) == fields
