"""Tests for the shared mapping store."""

from repro.plan.store import MappingStore

SIG = ("map", "is strong?", "hero", ("name",))


class TestMappingStore:
    def test_full_coverage_served(self):
        store = MappingStore()
        store.put(SIG, {("a",): "yes", ("b",): "no"})
        served = store.lookup(SIG, [("a",), ("b",)])
        assert served == {("a",): "yes", ("b",): "no"}
        assert store.hits == 1
        assert store.keys_served == 2

    def test_partial_coverage_is_all_or_nothing(self):
        store = MappingStore()
        store.put(SIG, {("a",): "yes"})
        assert store.lookup(SIG, [("a",), ("b",)]) is None
        assert store.partial == 1
        assert store.misses == 1
        assert store.keys_served == 0

    def test_unknown_signature_misses(self):
        store = MappingStore()
        assert store.lookup(SIG, [("a",)]) is None
        assert store.misses == 1
        assert store.partial == 0

    def test_none_values_count_as_coverage(self):
        # a planned call that produced no usable answer is still an
        # answer — the executor degrades the same way it would have live
        store = MappingStore()
        store.put(SIG, {("a",): None})
        assert store.lookup(SIG, [("a",)]) == {("a",): None}

    def test_puts_merge_and_later_wins(self):
        store = MappingStore()
        store.put(SIG, {("a",): "old", ("b",): "kept"})
        store.put(SIG, {("a",): "new"})
        assert store.lookup(SIG, [("a",), ("b",)]) == {
            ("a",): "new", ("b",): "kept",
        }
        assert store.coverage(SIG) == 2

    def test_subset_lookup_served(self):
        store = MappingStore()
        store.put(SIG, {("a",): "yes", ("b",): "no"})
        assert store.lookup(SIG, [("b",)]) == {("b",): "no"}

    def test_stats_shape(self):
        store = MappingStore()
        store.put(SIG, {("a",): "yes"})
        store.lookup(SIG, [("a",)])
        assert store.stats() == {
            "signatures": 1, "keys": 1, "hits": 1, "misses": 0,
            "partial": 0, "keys_served": 1,
        }
        assert len(store) == 1
        assert store.total_keys() == 1


class TestPeek:
    """peek: the batcher's statistics-free, partial-coverage lookup."""

    def test_returns_only_the_covered_subset(self):
        store = MappingStore()
        store.put(SIG, {("a",): "yes"})
        assert store.peek(SIG, [("a",), ("b",)]) == {("a",): "yes"}

    def test_unknown_signature_is_empty(self):
        store = MappingStore()
        assert store.peek(SIG, [("a",)]) == {}

    def test_never_touches_hit_miss_stats(self):
        store = MappingStore()
        store.put(SIG, {("a",): "yes"})
        store.peek(SIG, [("a",)])
        store.peek(SIG, [("b",)])
        assert store.hits == 0
        assert store.misses == 0
        assert store.partial == 0
        assert store.keys_served == 0

    def test_none_values_still_count_as_covered(self):
        store = MappingStore()
        store.put(SIG, {("a",): None})
        assert store.peek(SIG, [("a",)]) == {("a",): None}
