"""Tests for batch-size policies."""

import pytest

from repro.plan.policy import (
    DEFAULT_MAX_BATCH_SIZE,
    AdaptiveBatchPolicy,
    FixedBatchPolicy,
)


class TestFixedBatchPolicy:
    def test_default_is_blendsql_five(self):
        assert FixedBatchPolicy().batch_size() == 5

    def test_any_size(self):
        assert FixedBatchPolicy(3).batch_size() == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedBatchPolicy(0)


class TestAdaptiveBatchPolicy:
    """The worked examples from the module docstring, pinned."""

    def test_gpt35_zero_shot_picks_six(self):
        policy = AdaptiveBatchPolicy.for_model("gpt-3.5-turbo", 0)
        assert policy.batch_size() == 6

    def test_gpt4_zero_shot_picks_eight(self):
        policy = AdaptiveBatchPolicy.for_model("gpt-4-turbo", 0)
        assert policy.batch_size() == 8

    def test_perfect_model_hits_the_ceiling(self):
        policy = AdaptiveBatchPolicy.for_model("perfect", 0)
        assert policy.batch_size() == DEFAULT_MAX_BATCH_SIZE

    def test_shots_loosen_the_format_cap(self):
        # few-shot demonstrations lower the misalignment rate, so the
        # format cap can only move up with shots
        zero = AdaptiveBatchPolicy.for_model("gpt-3.5-turbo", 0)
        five = AdaptiveBatchPolicy.for_model("gpt-3.5-turbo", 5)
        assert five.batch_size() >= zero.batch_size()

    def test_floor_is_respected(self):
        # a punishing budget cannot push the size below BlendSQL's 5
        policy = AdaptiveBatchPolicy.for_model(
            "gpt-3.5-turbo", 0, max_item_loss=0.001, misalign_budget=0.001
        )
        assert policy.batch_size() == 5

    def test_ceiling_is_respected(self):
        policy = AdaptiveBatchPolicy.for_model(
            "gpt-3.5-turbo", 0, ceiling=6, max_item_loss=0.5,
            misalign_budget=10.0,
        )
        assert policy.batch_size() <= 6

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy.for_model("perfect", 0, floor=0)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy.for_model("perfect", 0, floor=8, ceiling=4)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy.for_model("perfect", 0, max_item_loss=1.5)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy.for_model("perfect", 0, misalign_budget=0)

    def test_explain_names_both_caps(self):
        explanation = AdaptiveBatchPolicy.for_model("gpt-3.5-turbo", 0).explain()
        assert explanation["batch_size"] == 6
        assert explanation["accuracy_cap"] is not None
        assert explanation["format_cap"] is not None
        assert explanation["model"] == "gpt-3.5-turbo"

    def test_explain_perfect_model_has_no_caps(self):
        explanation = AdaptiveBatchPolicy.for_model("perfect", 0).explain()
        assert explanation["accuracy_cap"] is None
        assert explanation["format_cap"] is None
