"""Tests for the run-level call planner."""

import pytest

from repro.llm.cache import PromptCache
from repro.plan import CallPlanner, MappingStore
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor

from tests.conftest import make_model

MAP_Q = (
    "SELECT superhero_name FROM superhero WHERE "
    "{{LLMMap('What is the eye color of this superhero?', "
    "'superhero::superhero_name', 'superhero::full_name')}} = 'Blue'"
)
# a different question over the SAME ingredient signature
MAP_Q2 = (
    "SELECT COUNT(*) FROM superhero WHERE "
    "{{LLMMap('What is the eye color of this superhero?', "
    "'superhero::superhero_name', 'superhero::full_name')}} = 'Green'"
)
QA_Q = "SELECT {{LLMQA('What planet was Superman born on?')}}"


@pytest.fixture()
def harness(superhero_world):
    """(executor, model) over a fresh curated superhero database."""
    db = build_curated_database(superhero_world)
    model = make_model(superhero_world)
    executor = HybridQueryExecutor(
        db, model, superhero_world, cache=PromptCache()
    )
    yield executor, model
    db.close()


class TestPlanning:
    def test_mode_validated(self, harness):
        executor, _ = harness
        with pytest.raises(ValueError):
            CallPlanner(executor, mode="eager")

    def test_prompt_mode_dedups_shared_signatures(self, harness):
        executor, _ = harness
        plan = CallPlanner(executor, mode="prompt").plan([MAP_Q, MAP_Q2, QA_Q])
        stats = plan.stats
        # the two map questions collect identical prompts: half drop out
        assert stats.questions == 3
        assert stats.collected > stats.unique
        assert stats.dedup_pct > 0
        assert len(plan.calls) == stats.unique

    def test_calls_ordered_longest_first(self, harness):
        executor, _ = harness
        planner = CallPlanner(executor, mode="prompt")
        plan = planner.plan([MAP_Q, QA_Q])
        seconds = [planner._estimate_seconds(c) for c in plan.calls]
        assert seconds == sorted(seconds, reverse=True)

    def test_pairs_mode_unions_keys_across_questions(self, harness):
        executor, _ = harness
        plan = CallPlanner(executor, mode="pairs").plan([MAP_Q, MAP_Q2])
        stats = plan.stats
        assert stats.signatures == 1
        # both questions need every hero key, so dedup halves the pairs
        assert stats.collected == 2 * stats.unique


class TestExecution:
    def test_prompt_mode_prewarms_the_cache(self, harness):
        executor, model = harness
        CallPlanner(executor, mode="prompt").plan_and_execute([MAP_Q, QA_Q])
        paid_before = model.meter.total.calls
        assert paid_before > 0
        result = executor.execute(MAP_Q)
        assert result.rows  # real answers, served from the warm cache
        assert model.meter.total.calls == paid_before

    def test_prompt_mode_results_identical_to_unplanned(self, superhero_world):
        def _run(planned: bool):
            db = build_curated_database(superhero_world)
            try:
                model = make_model(superhero_world)
                ex = HybridQueryExecutor(
                    db, model, superhero_world, cache=PromptCache()
                )
                if planned:
                    CallPlanner(ex, mode="prompt").plan_and_execute(
                        [MAP_Q, MAP_Q2, QA_Q]
                    )
                rows = [ex.execute(q).rows for q in (MAP_Q, MAP_Q2, QA_Q)]
                return rows, model.meter.total
            finally:
                db.close()

        plain_rows, plain_usage = _run(planned=False)
        planned_rows, planned_usage = _run(planned=True)
        assert planned_rows == plain_rows
        assert planned_usage == plain_usage

    def test_pairs_mode_fills_the_store_and_serves_executions(self, harness):
        executor, model = harness
        store = MappingStore()
        executor.mapping_store = store
        plan = CallPlanner(
            executor, mode="pairs", store=store
        ).plan_and_execute([MAP_Q, MAP_Q2])
        assert plan.stats.keys_stored > 0
        assert store.total_keys() == plan.stats.keys_stored
        paid_before = model.meter.total.calls
        executor.execute(MAP_Q)
        executor.execute(MAP_Q2)
        # both ingredients fully covered: zero new upstream calls
        assert model.meter.total.calls == paid_before
        assert store.hits == 2

    def test_stats_accounting_balances(self, harness):
        executor, _ = harness
        plan = CallPlanner(executor, mode="prompt").plan_and_execute(
            [MAP_Q, QA_Q]
        )
        stats = plan.stats
        assert (
            stats.llm_calls + stats.cached_calls + stats.failed_calls
            == stats.planned_calls
        )
        assert len(stats.call_sizes) == stats.llm_calls
        record = stats.as_record()
        assert record["mode"] == "prompt"
        assert record["llm_calls"] == stats.llm_calls
